package analysis

import (
	"go/ast"
	"go/types"
)

// ElemStamp machine-checks the per-element attribution contract from
// PR 7: every micro-op a flow emits must carry the element slot it
// belongs to (hw.Op.Elem). The pipeline walker guarantees this for ops
// emitted through click.Ctx inside an element's Process bracket — it
// wraps every Process call in Ctx.SetElem — but three patterns bypass
// the bracket and silently land ops in slot 0, the overhead cell:
//
//  1. raw hw.Op composite literals that never set Elem (how Synth's
//     aggressor hid under "overhead" for two PRs),
//  2. calls to a PacketSource's EmitPacket from inside a Process method
//     (the raw ops carry whatever Elem the source stamped — usually
//     zero — not the processing element's slot),
//  3. Ctx emission helpers that run outside any bracket.
//
// Each is a build error unless the enclosing function is annotated
// //dataplane:stamped <reason>, which asserts one of the two legitimate
// stories: "my caller re-stamps these ops" or "these ops are overhead by
// design (rings, recycling, source pulls — slot 0 is their home)".
var ElemStamp = &Analyzer{
	Name: "elemstamp",
	Doc: "check that micro-op emission outside the pipeline walker's SetElem " +
		"bracket is explicit: raw hw.Op literals must set Elem, raw EmitPacket " +
		"calls inside Process brackets and unbracketed Ctx emission helpers must " +
		"carry a //dataplane:stamped annotation",
	Run: runElemStamp,
}

// ctxEmitMethods are the click.Ctx calls that append micro-ops stamped
// with the Ctx's current element slot.
var ctxEmitMethods = map[string]bool{
	"Load": true, "Store": true, "LoadBytes": true, "StoreBytes": true,
	"DMABytes": true, "Compute": true,
}

func runElemStamp(p *Pass) error {
	// Package hw owns the Op type; its own constructors and executors
	// are the attribution mechanism, not users of it.
	if p.Pkg.Name() == "hw" {
		return nil
	}
	for _, f := range p.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkElemStampFunc(p, fd)
		}
	}
	return nil
}

func checkElemStampFunc(p *Pass, fd *ast.FuncDecl) {
	if rt := recvType(p, fd); rt != nil && typeIs(rt, "click", "Ctx") {
		return // Ctx's own methods are the stamping mechanism
	}
	_, stamped := hasDirective(fd.Doc, "stamped")
	isProcess := isProcessMethod(p, fd)
	bracketed := isProcess || recvHasProcess(p, fd) || callsSetElem(p, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if stamped {
				return true
			}
			if isOpLiteralMissingElem(p, n) {
				p.Reportf(n.Pos(), "raw hw.Op literal without an Elem stamp: ops built outside the click.Ctx bracket land in the overhead slot and hide the element's cost (the PR 7 Synth bug); set Elem explicitly or annotate the function //dataplane:stamped <reason>")
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case sel.Sel.Name == "EmitPacket" && isProcess && !stamped:
				if isPacketSourceEmit(p, sel) {
					p.Reportf(n.Pos(), "raw EmitPacket inside a Process bracket: the source's ops carry its own Elem stamps, not this element's slot; re-stamp them with ctx.Elem() and annotate the method //dataplane:stamped <reason>")
				}
			case ctxEmitMethods[sel.Sel.Name] && typeIs(exprType(p, sel.X), "click", "Ctx"):
				if !bracketed && !stamped {
					p.Reportf(n.Pos(), "op emission via Ctx.%s outside the pipeline walker's SetElem bracket: ops are attributed to whatever slot is current; bracket with SetElem, or annotate the function //dataplane:stamped <reason> if the caller brackets it or the ops are overhead by design", sel.Sel.Name)
				}
			}
		}
		return true
	})
}

func exprType(p *Pass, e ast.Expr) types.Type {
	tv, ok := p.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// isProcessMethod reports whether fd is an element Process method: a
// method named Process whose first parameter is a *click.Ctx — the
// signature the pipeline walker brackets with SetElem.
func isProcessMethod(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Process" {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	return typeIs(exprType(p, params.List[0].Type), "click", "Ctx")
}

// recvHasProcess reports whether fd is a method on a type that has a
// Process(*click.Ctx, ...) method. The pipeline walker brackets the
// element as a whole, so an element's helper methods run under the same
// SetElem bracket as its Process.
func recvHasProcess(p *Pass, fd *ast.FuncDecl) bool {
	rt := recvType(p, fd)
	if rt == nil {
		return false
	}
	for i := 0; i < rt.NumMethods(); i++ {
		m := rt.Method(i)
		if m.Name() != "Process" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 {
			continue
		}
		if typeIs(sig.Params().At(0).Type(), "click", "Ctx") {
			return true
		}
	}
	return false
}

// callsSetElem reports whether the function manages the bracket itself.
func callsSetElem(p *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "SetElem" {
				if typeIs(exprType(p, sel.X), "click", "Ctx") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isOpLiteralMissingElem reports whether lit is an hw.Op composite
// literal that does not set the Elem field.
func isOpLiteralMissingElem(p *Pass, lit *ast.CompositeLit) bool {
	n := namedType(p, lit)
	if n == nil || !typeIs(n, "hw", "Op") {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasElem := false
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Elem" {
			hasElem = true
		}
	}
	if !hasElem {
		return false
	}
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
			// Positional literal: every field, Elem included, is present.
			return false
		}
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Elem" {
				return false
			}
		}
	}
	return true
}

// isPacketSourceEmit reports whether sel is an EmitPacket call on a
// value whose type (or one of whose methods' signatures) matches the
// hw.PacketSource shape: func([]Op) []Op. Matching on shape rather than
// the interface keeps the rule watching concrete sources too.
func isPacketSourceEmit(p *Pass, sel *ast.SelectorExpr) bool {
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	in, ok := sig.Params().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	out, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return typeIs(in.Elem(), "hw", "Op") && typeIs(out.Elem(), "hw", "Op")
}
