package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// exprString renders an expression for structural comparison (e.g. the
// self-append check). Positions are irrelevant, so a throwaway fileset
// is fine.
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}

// namedType unwraps e's type to its named form (through one pointer),
// returning nil for unnamed types.
func namedType(p *Pass, e ast.Expr) *types.Named {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return asNamed(tv.Type)
}

func asNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIs reports whether t (through one pointer) is the named type
// pkgName.typeName. Matching is by package *name*, not import path, so
// the rule applies equally to the real tree (pktpredict/internal/hw) and
// to analysistest fixtures that model the API under a short path.
func typeIs(t types.Type, pkgName, typeName string) bool {
	n := asNamed(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// recvType returns the receiver's named type of a method declaration,
// nil for plain functions.
func recvType(p *Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := p.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return asNamed(tv.Type)
}

// qualifiedName renders a named type as pkgpath.Name for facts.
func qualifiedName(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}
