// Package metrics exercises the metriclint analyzer: constant family
// names, counter/_total discipline, and constant label sets.
package metrics

import "obs"

// family names declared as constants are fine.
const packetsName = "dataplane_packets_total"

func register(r *obs.Registry, dyn string, dynLabels []string) {
	r.Counter(packetsName, "packets", "worker")
	r.Counter("drops_total", "drops")
	r.Gauge("queue_depth", "fill", "worker")
	r.Histogram("batch_fill", "batch", []float64{1, 8, 32}, "worker")

	r.Counter("packet_count", "h")            // want `counter family name "packet_count" must end in _total`
	r.Gauge("busy_total", "h")                // want `gauge family name "busy_total" must not end in _total`
	r.Histogram("lat_total", "h", nil)        // want `histogram family name "lat_total" must not end in _total`
	r.Counter(dyn, "h")                       // want `dynamically built metric family name`
	r.Counter("Bad_total", "h")               // want `does not match`
	r.Counter("ok_total", "h", dyn)           // want `dynamically built label name`
	r.Counter("ok2_total", "h", "Bad-Label")  // want `label name "Bad-Label" does not match`
	r.Counter("fwd_total", "h", dynLabels...) // want `label names forwarded as a slice`

	r.Counter(dyn, "h") //dataplane:allow metriclint fixture exception with a recorded reason
}
