// Package hw models the real op-trace API (pktpredict/internal/hw) for
// analyzer fixtures: the analyzers match the Op type and the
// PacketSource shape by package name, so this stand-in exercises the
// same code paths.
package hw

// Addr is a simulated physical address.
type Addr uint64

// Op is one traced micro-op. Elem is the per-element attribution slot
// elemstamp guards.
type Op struct {
	Kind   uint8
	Addr   Addr
	Cycles uint32
	Instrs uint32
	Func   uint16
	Elem   uint16
}

// PacketSource is the raw emission interface.
type PacketSource interface {
	EmitPacket(buf []Op) []Op
}
