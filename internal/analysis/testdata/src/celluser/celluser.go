// Package celluser exercises singlewriter's cross-package facts: the
// cell types are declared in package cell, and the analyzer learns them
// from the facts that package exported.
package celluser

import "cell"

// Stats aggregates a snapshot.
type Stats struct {
	Hits uint64
}

// strayRemoteWrite touches a live cell declared elsewhere: flagged via
// the imported fact.
func strayRemoteWrite(c *cell.Cell) {
	c.Hits++ // want `access to live cell field Cell\.Hits`
}

// snapshot sums value copies: fine.
func snapshot(cells []cell.Cell) Stats {
	var s Stats
	for _, c := range cells {
		s.Hits += c.Hits
	}
	return s
}

// declaredOwner is this package's legitimate writer.
//
//dataplane:owner the consumer-side drain loop is the declared writer
func declaredOwner(c *cell.Cell) {
	c.Drops++
}
