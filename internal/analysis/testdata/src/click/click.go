// Package click models the real pipeline API (pktpredict/internal/click)
// for analyzer fixtures.
package click

import "hw"

// Packet is a packet in flight.
type Packet struct {
	Data []byte
}

// Verdict is a Process result.
type Verdict int

// Continue keeps the packet moving.
const Continue Verdict = -1

// Ctx is the per-walk op sink; its element slot brackets attribution.
type Ctx struct {
	Ops  []hw.Op
	elem uint16
}

// SetElem installs the current element slot, returning the old one.
func (c *Ctx) SetElem(e uint16) uint16 {
	old := c.elem
	c.elem = e
	return old
}

// Elem returns the current element slot.
func (c *Ctx) Elem() uint16 { return c.elem }

// Load emits one read.
func (c *Ctx) Load(a hw.Addr) {
	c.Ops = append(c.Ops, hw.Op{Kind: 1, Addr: a, Elem: c.elem})
}

// Store emits one write.
func (c *Ctx) Store(a hw.Addr) {
	c.Ops = append(c.Ops, hw.Op{Kind: 2, Addr: a, Elem: c.elem})
}

// Compute emits busy cycles.
func (c *Ctx) Compute(cycles, instrs uint32) {
	c.Ops = append(c.Ops, hw.Op{Kind: 3, Cycles: cycles, Instrs: instrs, Elem: c.elem})
}
