// Package obs models the real metrics registry
// (pktpredict/internal/obs) for metriclint fixtures; the analyzer
// matches the Registry type by package name.
package obs

// Registry registers metric families.
type Registry struct{}

// CounterVec is a labelled counter family.
type CounterVec struct{}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{}

// Counter registers a counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec { return nil }

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *GaugeVec { return nil }

// Histogram registers a histogram family.
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return nil
}
