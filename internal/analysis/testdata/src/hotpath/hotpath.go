// Package hotpath exercises the hotpathalloc analyzer: every allocation
// class it knows, the self-append idiom it admits, and the allow escape
// hatch.
package hotpath

import "fmt"

type record struct {
	a, b uint64
}

// sink keeps values alive without interface boxing.
var sink record

// cold is unannotated: nothing in it is flagged.
func cold() []int {
	return make([]int, 8)
}

// hot trips every class the analyzer knows.
//
//dataplane:hotpath
func hot(buf []byte, m map[string]uint64, name string, n int) []byte {
	b := make([]byte, n) // want `make in hot path allocates`
	_ = b
	p := new(record) // want `new in hot path allocates`
	_ = p
	r := &record{a: 1} // want `&composite literal in hot path escapes`
	_ = r
	xs := []int{1, 2, 3} // want `slice literal in hot path allocates`
	_ = xs
	lut := map[int]int{1: 2} // want `map literal in hot path allocates`
	_ = lut
	m[name] = 1             // want `map write in hot path may allocate`
	other := append(buf, 1) // want `append into a different slice may grow on every call`
	_ = other
	_ = fmt.Sprintf("%d", n)  // want `fmt\.Sprintf in hot path allocates`
	_ = []byte(name)          // want `string conversion in hot path copies its bytes`
	_ = name + "!"            // want `string concatenation in hot path allocates`
	go func() {}()            // want `go statement in hot path`
	var boxed interface{} = n // want `value is boxed into interface`
	_ = boxed
	fn := func() { n++ } // want `closure captures "n" by reference`
	fn()
	buf = append(buf, 1) // self-append reuse: allowed
	buf = append(buf[:0], 2)
	return buf
}

// hotClean is annotated and allocation-free: no findings.
//
//dataplane:hotpath
func hotClean(buf []byte, v uint64) []byte {
	sink.a = v
	sink.b += v
	buf = append(buf, byte(v))
	return buf
}

// hotAllowed uses the escape hatch with a reason: suppressed.
//
//dataplane:hotpath
func hotAllowed(n int) {
	b := make([]byte, n) //dataplane:allow hotpathalloc fixture exception with a recorded reason
	_ = b
}

// hotBadAllow's escape hatch has no reason: the allow itself is
// diagnosed and the finding is NOT suppressed.
//
//dataplane:hotpath
//dataplane:allow hotpathalloc // want `needs a reason`
func hotBadAllow(n int) {
	b := make([]byte, n) // want `make in hot path allocates`
	_ = b
}
