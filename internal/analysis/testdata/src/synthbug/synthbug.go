// Package synthbug reproduces the PR 7 Synth regression: a source that
// appends raw hw.Op literals without Elem stamps, and a Process method
// that splices the source's ops into the walk without re-stamping them —
// the exact pattern that hid an aggressor element under the overhead
// slot until a profile-drift alarm caught it.
package synthbug

import (
	"click"
	"hw"
)

// Source emits raw ops the way synth.Source did before the fix.
type Source struct{}

// EmitPacket implements hw.PacketSource.
func (Source) EmitPacket(buf []hw.Op) []hw.Op {
	buf = append(buf, hw.Op{Kind: 3, Cycles: 9, Instrs: 9}) // want `raw hw\.Op literal without an Elem stamp`
	buf = append(buf, hw.Op{Kind: 1, Addr: 64})             // want `raw hw\.Op literal without an Elem stamp`
	return buf
}

// FixedSource is the post-fix shape: the annotation asserts the caller
// re-stamps, so the raw literals are accepted.
type FixedSource struct{}

// EmitPacket implements hw.PacketSource.
//
//dataplane:stamped callers re-stamp these ops with their own slot
func (FixedSource) EmitPacket(buf []hw.Op) []hw.Op {
	return append(buf, hw.Op{Kind: 3, Cycles: 9, Instrs: 9})
}

// Buggy splices raw source ops into its bracket without re-stamping.
type Buggy struct {
	src Source
}

// Process implements click.Element.
func (e *Buggy) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	ctx.Ops = e.src.EmitPacket(ctx.Ops) // want `raw EmitPacket inside a Process bracket`
	return click.Continue
}

// Fixed re-stamps the spliced ops, and says so.
type Fixed struct {
	src FixedSource
}

// Process implements click.Element.
//
//dataplane:stamped re-stamps the source's raw ops with ctx.Elem() below
func (e *Fixed) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	start := len(ctx.Ops)
	ctx.Ops = e.src.EmitPacket(ctx.Ops)
	for i := start; i < len(ctx.Ops); i++ {
		ctx.Ops[i].Elem = ctx.Elem()
	}
	return click.Continue
}

// chargeSetup emits ops with no bracket in sight: flagged.
func chargeSetup(ctx *click.Ctx) {
	ctx.Load(4096)     // want `op emission via Ctx\.Load outside the pipeline walker's SetElem bracket`
	ctx.Compute(10, 8) // want `op emission via Ctx\.Compute outside the pipeline walker's SetElem bracket`
}

// chargeBracketed manages its own bracket, so emission is attributed.
func chargeBracketed(ctx *click.Ctx, slot uint16) {
	old := ctx.SetElem(slot)
	ctx.Load(4096)
	ctx.SetElem(old)
}

// chargeAllowed demonstrates the escape hatch on a single line.
func chargeAllowed(ctx *click.Ctx) {
	ctx.Compute(1, 1) //dataplane:allow elemstamp fixture exception with a recorded reason
}

// helper is a method on a type that has a Process method, so it runs
// under the element's bracket.
func (e *Buggy) helper(ctx *click.Ctx) {
	ctx.Store(128)
}

// positional literals necessarily set every field, Elem included.
func positional() hw.Op {
	return hw.Op{3, 0, 9, 9, 0, 7}
}
