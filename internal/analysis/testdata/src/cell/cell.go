// Package cell exercises the singlewriter analyzer in the declaring
// package: cell registration, padding checks, and the access rules.
package cell

import "sync/atomic"

// Cell is a correctly padded single-writer accounting cell.
//
//dataplane:cell
type Cell struct {
	Hits  uint64
	Drops uint64
	_     [6]uint64
}

// Short has lost its padding.
//
//dataplane:cell
type Short struct { // want `not a positive multiple of 64`
	Hits uint64
}

// ACell counts through an atomic, padded to a line.
//
//dataplane:cell
type ACell struct {
	V atomic.Uint64
	_ [56]byte
}

// NotAStruct cannot be a cell.
//
//dataplane:cell
type NotAStruct int // want `applies to struct types`

// Reset is a method on the cell type: the designated accessor surface.
func (c *Cell) Reset() {
	c.Hits = 0
	c.Drops = 0
}

// ownerLoop is the declared single writer.
//
//dataplane:owner the worker loop owns this cell between barriers
func ownerLoop(c *Cell) {
	c.Hits++
}

// strayWrite reaches into a live cell through a pointer: flagged.
func strayWrite(c *Cell) {
	c.Hits++ // want `access to live cell field Cell\.Hits`
}

// strayIndexRead reaches through a slice into live cells: flagged.
func strayIndexRead(cells []Cell) uint64 {
	return cells[0].Drops // want `access to live cell field Cell\.Drops`
}

// snapshotRead copies the cell first: a value copy never aliases the
// writer's cache line.
func snapshotRead(cells []Cell) uint64 {
	snap := cells[0]
	return snap.Hits + snap.Drops
}

// atomicField goes through the atomic-typed field: exempt.
func atomicField(c *ACell) {
	c.V.Add(1)
}

// atomicAddress hands the field's address to sync/atomic: exempt.
func atomicAddress(c *Cell) {
	atomic.AddUint64(&c.Hits, 1)
}

// allowedRead records its reason on the line.
func allowedRead(c *Cell) uint64 {
	return c.Hits //dataplane:allow singlewriter fixture exception with a recorded reason
}
