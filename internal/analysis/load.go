package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// This file is the standalone package loader and driver: `vetdp ./...`
// without `go vet` in front. It shells out to `go list -export -deps
// -json`, which compiles nothing itself but makes the toolchain drop
// export data for every dependency into the build cache, then
// type-checks each matched package from source against that export
// data. Everything here is offline-safe: no module downloads, no
// golang.org/x/tools.

// LoadedPackage is one package ready for analysis. Dependency-only
// packages (stdlib and anything not matched by the patterns) carry
// types through export data but no syntax, and are never analyzed.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	DepOnly    bool
	Imports    []string

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns from dir and type-checks every matched (non-dep)
// package from source.
func Load(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	exports := map[string]string{}   // canonical import path → export file
	importMap := map[string]string{} // source import path → canonical
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		for from, to := range lp.ImportMap {
			importMap[from] = to
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := importMap[path]; ok {
			path = canon
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	sizes := types.SizesFor("gc", build.Default.GOARCH)

	var out []*LoadedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg := &LoadedPackage{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			DepOnly:    lp.DepOnly,
			Imports:    lp.Imports,
		}
		// Dependency-only module packages are still parsed and analyzed —
		// silently, for their facts (e.g. singlewriter's cell types) —
		// mirroring the VetxOnly runs cmd/go drives in unitchecker mode.
		// The standard library is types-only via export data.
		if !lp.Standard {
			if err := typeCheckFromSource(pkg, lp, fset, imp, sizes); err != nil {
				return nil, err
			}
		}
		out = append(out, pkg)
	}
	return out, nil
}

func typeCheckFromSource(pkg *LoadedPackage, lp *listedPackage, fset *token.FileSet, imp types.Importer, sizes types.Sizes) error {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp, Sizes: sizes}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Fset = fset
	pkg.Files = files
	pkg.Pkg = tpkg
	pkg.Info = info
	pkg.Sizes = sizes
	return nil
}

// Finding is one driver-level diagnostic with a resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run drives the analyzers over the loaded packages in dependency
// order, threading facts from each package to its dependents, and
// returns all findings sorted by position.
func Run(analyzers []*Analyzer, pkgs []*LoadedPackage) ([]Finding, error) {
	byPath := map[string]*LoadedPackage{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	order := depOrder(pkgs, byPath)

	// facts[analyzer][importPath] = facts exported while analyzing it.
	facts := map[string]map[string][]string{}
	for _, a := range analyzers {
		facts[a.Name] = map[string][]string{}
	}

	var findings []Finding
	for _, p := range order {
		if p.Pkg == nil {
			continue // types-only dependency (standard library)
		}
		deps := transitiveImports(p, byPath)
		for _, a := range analyzers {
			a, p := a, p
			var depFacts []string
			for _, d := range deps {
				depFacts = append(depFacts, facts[a.Name][d]...)
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     p.Fset,
				Files:    p.Files,
				Pkg:      p.Pkg,
				Info:     p.Info,
				Sizes:    p.Sizes,
				DepFacts: func() []string { return depFacts },
				ExportFact: func(fact string) {
					facts[a.Name][p.ImportPath] = append(facts[a.Name][p.ImportPath], fact)
				},
				Report: func(d Diagnostic) {
					if p.DepOnly {
						return // facts-only pass over an unmatched dependency
					}
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      p.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, p.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// depOrder returns pkgs topologically sorted, dependencies first.
func depOrder(pkgs []*LoadedPackage, byPath map[string]*LoadedPackage) []*LoadedPackage {
	var order []*LoadedPackage
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *LoadedPackage)
	visit = func(p *LoadedPackage) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if d, ok := byPath[imp]; ok {
				visit(d)
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// transitiveImports returns the import paths reachable from p, sorted
// for deterministic fact ordering.
func transitiveImports(p *LoadedPackage, byPath map[string]*LoadedPackage) []string {
	seen := map[string]bool{}
	var visit func(paths []string)
	visit = func(paths []string) {
		for _, path := range paths {
			if seen[path] {
				continue
			}
			seen[path] = true
			if d, ok := byPath[path]; ok {
				visit(d.Imports)
			}
		}
	}
	visit(p.Imports)
	out := make([]string, 0, len(seen))
	for path := range seen {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}
