package analysis

import "testing"

// TestHotPathAllocGolden covers every allocation class hotpathalloc
// knows, the admitted self-append idiom, and both allow outcomes
// (reasoned allow suppresses; reasonless allow is itself diagnosed and
// suppresses nothing).
func TestHotPathAllocGolden(t *testing.T) {
	checkFixtures(t, HotPathAlloc, "hotpath")
}

// TestElemStampGolden replays the PR 7 Synth bug class: raw hw.Op
// literals without an Elem stamp, raw EmitPacket inside a Process
// bracket, and Ctx emission outside the walker's SetElem bracket. The
// synthbug fixture's Buggy types are the regression; the Fixed types
// are the shipped fix.
func TestElemStampGolden(t *testing.T) {
	checkFixtures(t, ElemStamp, "hw", "click", "synthbug")
}

// TestSingleWriterGolden covers cell registration (size and kind
// checks), the access rules in the declaring package, and — via the
// celluser fixture — cell facts flowing across package boundaries.
func TestSingleWriterGolden(t *testing.T) {
	checkFixtures(t, SingleWriter, "cell", "celluser")
}

// TestMetricLintGolden covers family-name constancy, the _total
// counter convention, label constancy, and slice-forwarded labels
// against a fixture mirror of the obs.Registry surface.
func TestMetricLintGolden(t *testing.T) {
	checkFixtures(t, MetricLint, "obs", "metrics")
}
