package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar. Directives are ordinary //-comments with no space
// after the slashes, the same convention as //go:noinline, so gofmt
// preserves them and godoc hides them:
//
//	//dataplane:hotpath
//	//dataplane:stamped <reason>
//	//dataplane:cell
//	//dataplane:owner <reason>
//	//dataplane:allow <analyzer> <reason>
//
// hotpath, stamped, owner and allow attach to a function through its doc
// comment; cell attaches to a type declaration; allow additionally works
// as an end-of-line comment suppressing just that line's finding.
const directivePrefix = "//dataplane:"

// directive is one parsed //dataplane: comment.
type directive struct {
	name string // "hotpath", "stamped", "cell", "owner", "allow"
	args string // remainder after the name, space-trimmed
	pos  token.Pos
}

// parseDirectives extracts //dataplane: directives from a comment group.
func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(text, " ")
		// A directive's arguments end at an embedded "//": trailing
		// commentary on the same line is not part of the reason.
		if i := strings.Index(args, "//"); i >= 0 {
			args = args[:i]
		}
		out = append(out, directive{name: name, args: strings.TrimSpace(args), pos: c.Pos()})
	}
	return out
}

// hasDirective reports whether the comment group carries the named
// directive, returning its arguments.
func hasDirective(cg *ast.CommentGroup, name string) (args string, ok bool) {
	for _, d := range parseDirectives(cg) {
		if d.name == name {
			return d.args, true
		}
	}
	return "", false
}

// allowDirective is one //dataplane:allow occurrence.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
}

func toAllow(d directive) (allowDirective, bool) {
	if d.name != "allow" {
		return allowDirective{}, false
	}
	an, reason, _ := strings.Cut(d.args, " ")
	return allowDirective{analyzer: an, reason: strings.TrimSpace(reason), pos: d.pos}, true
}

// declSpan is one top-level declaration's extent and doc comment, the
// scope a doc-level directive covers.
type declSpan struct {
	pos, end token.Pos
	doc      *ast.CommentGroup
	typeDocs []*ast.CommentGroup // TypeSpec docs inside a GenDecl
}

// fileIndex is the per-file directive lookup structure.
type fileIndex struct {
	pos, end token.Pos
	allows   map[int][]allowDirective // line → end-of-line allows
	decls    []declSpan
}

// directiveIndex indexes a package's directives for the allow check.
type directiveIndex struct {
	files    []*fileIndex
	reported map[token.Pos]bool // malformed allows already complained about
}

func (p *Pass) directives() *directiveIndex {
	if p.dirs != nil {
		return p.dirs
	}
	idx := &directiveIndex{reported: map[token.Pos]bool{}}
	for _, f := range p.Files {
		fi := &fileIndex{pos: f.FileStart, end: f.FileEnd, allows: map[int][]allowDirective{}}
		for _, cg := range f.Comments {
			for _, d := range parseDirectives(cg) {
				if a, ok := toAllow(d); ok {
					line := p.Fset.Position(d.pos).Line
					fi.allows[line] = append(fi.allows[line], a)
				}
			}
		}
		for _, decl := range f.Decls {
			span := declSpan{pos: decl.Pos(), end: decl.End()}
			switch d := decl.(type) {
			case *ast.FuncDecl:
				span.doc = d.Doc
				if d.Doc != nil {
					span.pos = d.Doc.Pos()
				}
			case *ast.GenDecl:
				span.doc = d.Doc
				if d.Doc != nil {
					span.pos = d.Doc.Pos()
				}
				for _, s := range d.Specs {
					if ts, ok := s.(*ast.TypeSpec); ok && ts.Doc != nil {
						span.typeDocs = append(span.typeDocs, ts.Doc)
					}
				}
			}
			fi.decls = append(fi.decls, span)
		}
		idx.files = append(idx.files, fi)
	}
	p.dirs = idx
	return idx
}

// allowed reports whether pos is covered by an //dataplane:allow for the
// pass's analyzer: an end-of-line allow on the same line, or a doc-level
// allow on the enclosing top-level declaration. An allow without a
// reason is itself diagnosed and suppresses nothing — the reason is the
// audit trail the escape hatch exists to capture.
func (p *Pass) allowed(pos token.Pos) bool {
	idx := p.directives()
	var fi *fileIndex
	for _, f := range idx.files {
		if pos >= f.pos && pos < f.end {
			fi = f
			break
		}
	}
	if fi == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	cands := append([]allowDirective(nil), fi.allows[line]...)
	for _, span := range fi.decls {
		if pos < span.pos || pos >= span.end {
			continue
		}
		for _, cg := range append([]*ast.CommentGroup{span.doc}, span.typeDocs...) {
			for _, d := range parseDirectives(cg) {
				if a, ok := toAllow(d); ok {
					cands = append(cands, a)
				}
			}
		}
	}
	for _, a := range cands {
		if a.analyzer != p.Analyzer.Name {
			continue
		}
		if a.reason == "" {
			if !idx.reported[a.pos] {
				idx.reported[a.pos] = true
				p.Report(Diagnostic{Pos: a.pos,
					Message: "//dataplane:allow " + a.analyzer + " needs a reason: the escape hatch records why the rule is intentionally broken"})
			}
			continue
		}
		return true
	}
	return false
}

// enclosingFunc returns the function declaration containing pos, or nil.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && pos >= fd.Pos() && pos < fd.End() {
			return fd
		}
	}
	return nil
}
