package analysis

import (
	"go/ast"
	"go/types"
)

// SingleWriter guards the repo's false-sharing discipline. Per-core hot
// state — hw.ElemCell, the obs counter/gauge cells — is laid out one
// cache line per writer: the writer mutates plain fields at line rate
// and readers either go through sync/atomic or receive a value copy.
// That contract is invisible to the compiler, so two silent regressions
// keep threatening it: a new field grows the struct past its padding
// (two writers land on one line) or a new reader reaches through a
// pointer into a live cell (a reader shares the writer's line).
//
// Types opt in with //dataplane:cell on the type's doc comment. The
// analyzer then checks that the struct's size stays a positive multiple
// of 64 bytes, and flags any field access that can alias the live cell
// — reached through a pointer, a slice, or a package-level variable —
// unless the field is atomic-typed, its address is taken only to feed
// sync/atomic, the access sits in one of the cell type's own methods,
// or the enclosing function is annotated //dataplane:owner <reason>
// (the declared single writer). Value copies are always fine: ranging
// over a snapshot slice, struct returns, locals.
//
// Cell types are exported as package facts, so accesses in dependent
// packages are checked too.
var SingleWriter = &Analyzer{
	Name: "singlewriter",
	Doc: "check //dataplane:cell structs: size stays a 64-byte multiple and " +
		"live-cell fields are touched only via sync/atomic, the cell's own " +
		"methods, or //dataplane:owner functions",
	Run: runSingleWriter,
}

const cellLine = 64

func runSingleWriter(p *Pass) error {
	cells := map[string]bool{}
	for _, q := range p.facts("cell ") {
		cells[q] = true
	}
	collectLocalCells(p, cells)

	for _, f := range p.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, owner := hasDirective(fd.Doc, "owner"); owner {
				continue
			}
			checkCellAccesses(p, fd, cells)
		}
	}
	return nil
}

// collectLocalCells finds //dataplane:cell types in this package, checks
// their size, and exports them as facts.
func collectLocalCells(p *Pass, cells map[string]bool) {
	for _, f := range p.NonTestFiles() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, onSpec := hasDirective(ts.Doc, "cell")
				_, onDecl := hasDirective(gd.Doc, "cell")
				if !onSpec && !onDecl {
					continue
				}
				obj, ok := p.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
					p.Reportf(ts.Pos(), "//dataplane:cell applies to struct types, but %s is not a struct", ts.Name.Name)
					continue
				}
				cells[qualifiedName(named)] = true
				p.exportFact("cell " + qualifiedName(named))
				if p.Sizes == nil {
					continue
				}
				sz := p.Sizes.Sizeof(named.Underlying())
				if sz <= 0 || sz%cellLine != 0 {
					p.Reportf(ts.Pos(), "cell struct %s is %d bytes, not a positive multiple of %d: its cache-line padding no longer isolates the writer; re-pad the struct", ts.Name.Name, sz, cellLine)
				}
			}
		}
	}
}

// checkCellAccesses flags aliasing accesses to live cells inside fd.
func checkCellAccesses(p *Pass, fd *ast.FuncDecl, cells map[string]bool) {
	// Methods on a cell type are the cell's designated accessor surface.
	ownCell := ""
	if rt := recvType(p, fd); rt != nil && cells[qualifiedName(rt)] {
		ownCell = qualifiedName(rt)
	}

	atomicArgs := atomicAddressArgs(p, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := p.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		recv := asNamed(selection.Recv())
		if recv == nil {
			return true
		}
		q := qualifiedName(recv)
		if !cells[q] || q == ownCell {
			return true
		}
		if isAtomicType(selection.Obj().Type()) {
			return true // field carries its own memory-order discipline
		}
		if atomicArgs[sel] {
			return true // &field handed to sync/atomic
		}
		if isValueCopy(p, sel.X) {
			return true // snapshot, not the live cell
		}
		p.Reportf(sel.Pos(), "access to live cell field %s.%s from outside its writer: cells are single-writer cache lines — use sync/atomic, a value copy, a method on %s, or annotate the function //dataplane:owner <reason>", recv.Obj().Name(), sel.Sel.Name, recv.Obj().Name())
		return true
	})
}

// isAtomicType reports whether t (or its elem through one pointer) is a
// sync/atomic type such as atomic.Uint64.
func isAtomicType(t types.Type) bool {
	n := asNamed(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// atomicAddressArgs collects selector expressions whose address is
// passed to a sync/atomic function, e.g. atomic.AddUint64(&c.Cycles, d).
func atomicAddressArgs(p *Pass, fd *ast.FuncDecl) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Info.Uses[fn.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op.String() != "&" {
				continue
			}
			if s, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
				out[s] = true
			}
		}
		return true
	})
	return out
}

// isValueCopy reports whether e denotes a value that cannot alias a live
// cell: the selector chain bottoms out in a local non-pointer variable,
// a call result, or a composite literal, with no pointer indirection,
// slice indexing, or package-level variable along the way. Such chains
// read a snapshot — e.cells.Cycles over a range copy, c.Cycles on a map
// value local — not the writer's cache line.
func isValueCopy(p *Pass, e ast.Expr) bool {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			sel, ok := p.Info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal || sel.Indirect() {
				return false // method value / through-pointer field
			}
			e = x.X
		case *ast.IndexExpr:
			tv, ok := p.Info.Types[x.X]
			if !ok {
				return false
			}
			if _, isArray := tv.Type.Underlying().(*types.Array); !isArray {
				return false // slice or map backing is shared
			}
			e = x.X
		case *ast.CallExpr, *ast.CompositeLit:
			return true
		case *ast.Ident:
			v, ok := p.Info.Uses[x].(*types.Var)
			if !ok {
				if _, ok := p.Info.Defs[x].(*types.Var); ok {
					return true // fresh definition in this statement
				}
				return false
			}
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				return false
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return false // package-level variable is shared state
			}
			return true
		default:
			return false
		}
	}
}
