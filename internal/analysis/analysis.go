// Package analysis is vetdp's domain-specific static-analysis suite: a
// small, dependency-free reimplementation of the go/analysis model plus
// four analyzers that machine-check the dataplane's correctness-of-
// accounting invariants. The paper's thesis — performance is predictable
// only when every cycle and cache reference is accounted for — holds in
// this repo only while three disciplines hold: every emitted micro-op
// carries its element slot (hw.Op.Elem), hot loops allocate nothing, and
// cache-line-padded single-writer cells are never shared. PR 7 showed
// those rules rot silently when enforced by benchmarks alone (Synth's raw
// EmitPacket ops went unstamped for two PRs and hid an aggressor element
// under the overhead slot); this package turns them into build errors.
//
// The four analyzers:
//
//   - hotpathalloc: functions annotated //dataplane:hotpath must be
//     allocation-free — heap-escaping composite literals, growing
//     appends, map writes, capturing closures, interface conversions and
//     fmt/string building are flagged.
//   - elemstamp: micro-op emission outside the pipeline walker's SetElem
//     bracket must be explicit — raw hw.Op literals without an Elem
//     field, raw EmitPacket calls inside Process brackets (the PR 7 bug
//     class), and Ctx emission from unbracketed helpers all require a
//     //dataplane:stamped annotation.
//   - singlewriter: structs annotated //dataplane:cell must stay padded
//     to a 64-byte multiple, and their plain fields may only be touched
//     by the cell's own methods, sync/atomic, or functions annotated
//     //dataplane:owner.
//   - metriclint: metric families registered on an obs.Registry must
//     have compile-time-constant Prometheus-style names (counters ending
//     in _total, gauges and histograms not) and constant label names.
//
// Every analyzer honours the //dataplane:allow <analyzer> <reason>
// escape hatch (same line, or the enclosing function's or type's doc
// comment). See docs/static-analysis.md for the annotation grammar.
//
// The framework mirrors golang.org/x/tools/go/analysis deliberately —
// Analyzer, Pass, diagnostics, package facts — but is built on the
// standard library only, so the repo stays dependency-free. cmd/vetdp
// drives it either standalone or as a `go vet -vettool` unit checker.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package through its Pass and reports diagnostics; it must be stateless
// across packages (cross-package state travels as facts).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, CLI flags, and
	// //dataplane:allow directives.
	Name string
	// Doc is the one-paragraph description shown by vetdp -help.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one package's syntax, types, and fact plumbing into an
// analyzer, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Sizes    types.Sizes

	// DepFacts returns the facts this analyzer exported while analyzing
	// the package's (transitive) dependencies. Nil-safe: drivers that do
	// not propagate facts leave it nil and analyzers see none.
	DepFacts func() []string
	// ExportFact publishes one fact string for dependent packages.
	// Nil-safe like DepFacts.
	ExportFact func(fact string)

	// Report delivers one diagnostic.
	Report func(Diagnostic)

	dirs *directiveIndex
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos unless an
// //dataplane:allow directive for this analyzer covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.allowed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// facts returns the dependency facts with the given space prefix
// stripped, e.g. prefix "cell " over singlewriter facts.
func (p *Pass) facts(prefix string) []string {
	if p.DepFacts == nil {
		return nil
	}
	var out []string
	for _, f := range p.DepFacts() {
		if strings.HasPrefix(f, prefix) {
			out = append(out, strings.TrimPrefix(f, prefix))
		}
	}
	return out
}

// exportFact publishes a fact if the driver propagates them.
func (p *Pass) exportFact(fact string) {
	if p.ExportFact != nil {
		p.ExportFact(fact)
	}
}

// NonTestFiles returns the pass's files excluding _test.go files: the
// suite checks production hot paths, and test code (fixtures, gates,
// fakes) routinely breaks the rules on purpose.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// All returns the full vetdp analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, ElemStamp, SingleWriter, MetricLint}
}

// ByName resolves an analyzer by name, for CLI flags and allow
// directives.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
