package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// This file implements the `go vet -vettool` unit-checker protocol, the
// same contract golang.org/x/tools/go/analysis/unitchecker fulfils,
// reimplemented on the standard library. cmd/go drives the tool once
// per package in the build graph:
//
//   - `vetdp -V=full` prints an identity line cmd/go folds into its
//     action cache key,
//   - `vetdp -flags` prints the tool's flag schema as JSON,
//   - `vetdp <objdir>/vet.cfg` analyzes one package described by a JSON
//     config: sources, export data for every import, and "vetx" fact
//     files produced by earlier runs over the dependencies.
//
// Dependency-only packages (VetxOnly, which includes the whole standard
// library) are analyzed silently just to harvest facts; diagnostics are
// printed only for the packages the user named, and a nonzero exit
// fails the `go vet` invocation.

// VetConfig mirrors cmd/go's internal vetConfig JSON.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool

	ImportPathOnlyForTesting string `json:",omitempty"`

	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// vetxFile is the fact payload one run leaves for dependent packages:
// analyzer name → exported fact strings. Facts inherited from this
// package's own dependencies are folded in, so dependents see the
// transitive closure without walking it.
type vetxFile map[string][]string

// RunUnitchecker analyzes the single package described by cfgPath and
// returns the process exit code: 0 clean, 1 for operational errors,
// 2 when diagnostics were reported (the unitchecker convention).
func RunUnitchecker(analyzers []*Analyzer, cfgPath string, stderr io.Writer) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "vetdp: %v\n", err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailure(cfg, stderr, err)
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailure(cfg, stderr, err)
	}

	depFacts := map[string][]string{}
	for _, vetxPath := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxPath)
		if err != nil {
			continue // a dep analyzed by an older tool build; facts degrade soft
		}
		var vf vetxFile
		if err := json.Unmarshal(data, &vf); err != nil {
			continue
		}
		for name, facts := range vf {
			depFacts[name] = append(depFacts[name], facts...)
		}
	}
	for name := range depFacts {
		sort.Strings(depFacts[name])
	}

	out := vetxFile{}
	exit := 0
	for _, a := range analyzers {
		a := a
		exported := append([]string(nil), depFacts[a.Name]...)
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        tpkg,
			Info:       info,
			Sizes:      conf.Sizes,
			DepFacts:   func() []string { return depFacts[a.Name] },
			ExportFact: func(fact string) { exported = append(exported, fact) },
			Report: func(d Diagnostic) {
				if cfg.VetxOnly {
					return
				}
				fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
				exit = 2
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(stderr, "vetdp: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
		if len(exported) > 0 {
			sort.Strings(exported)
			out[a.Name] = dedupe(exported)
		}
	}

	if cfg.VetxOutput != "" {
		if err := writeVetx(cfg.VetxOutput, out); err != nil {
			fmt.Fprintf(stderr, "vetdp: %v\n", err)
			return 1
		}
	}
	return exit
}

func readVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return cfg, nil
}

// typecheckFailure handles a package we could not parse or type-check.
// For dependency-only packages (assembly-heavy runtime internals, cgo)
// analysis is best-effort fact harvesting, so failure degrades to "no
// facts" rather than breaking the whole `go vet` run; for the packages
// under analysis it is fatal unless cmd/go asked otherwise.
func typecheckFailure(cfg *VetConfig, stderr io.Writer, err error) int {
	if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
		if cfg.VetxOutput != "" {
			if werr := writeVetx(cfg.VetxOutput, vetxFile{}); werr != nil {
				fmt.Fprintf(stderr, "vetdp: %v\n", werr)
				return 1
			}
		}
		return 0
	}
	fmt.Fprintf(stderr, "vetdp: %s: %v\n", cfg.ImportPath, err)
	return 1
}

func writeVetx(path string, vf vetxFile) error {
	data, err := json.Marshal(vf)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
