package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
	"strings"
)

// MetricLint keeps the observability surface machine-readable. The
// /metrics endpoint, the sweep harness's prediction-error reports, and
// every dashboard built on them assume Prometheus conventions: family
// names are stable compile-time identifiers, counters end in _total,
// and label sets are fixed at registration. A dynamically built family
// name (fmt.Sprintf'd per worker, say) explodes cardinality and breaks
// scrape configs silently; a counter without _total breaks rate()
// queries in ways nobody notices until a graph flatlines.
//
// The analyzer checks every Counter/Gauge/Histogram registration on an
// obs.Registry: the family name must be an untyped string constant
// matching Prometheus naming, counters must end _total and gauges and
// histograms must not, and every label name must be a constant matching
// label naming. //dataplane:allow metriclint <reason> covers the rare
// intentional exception (e.g. a registration helper that takes the
// family name as a parameter and is itself called with constants).
var MetricLint = &Analyzer{
	Name: "metriclint",
	Doc: "check obs.Registry metric registrations: constant Prometheus-style " +
		"family names (counters ending _total), constant label names",
	Run: runMetricLint,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// registryMethods maps registration method name to the index where label
// names start (Histogram takes buckets between help and labels).
var registryMethods = map[string]int{
	"Counter":   2,
	"Gauge":     2,
	"Histogram": 3,
}

func runMetricLint(p *Pass) error {
	for _, f := range p.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			labelStart, ok := registryMethods[sel.Sel.Name]
			if !ok || !typeIs(exprType(p, sel.X), "obs", "Registry") {
				return true
			}
			checkRegistration(p, call, sel.Sel.Name, labelStart)
			return true
		})
	}
	return nil
}

func checkRegistration(p *Pass, call *ast.CallExpr, kind string, labelStart int) {
	if len(call.Args) == 0 {
		return
	}
	nameArg := call.Args[0]
	name, isConst := constString(p, nameArg)
	if !isConst {
		p.Reportf(nameArg.Pos(), "dynamically built metric family name in %s registration: family names must be compile-time constants so scrape configs and dashboards can rely on them", kind)
	} else {
		switch {
		case !metricNameRE.MatchString(name):
			p.Reportf(nameArg.Pos(), "metric family name %q does not match %s", name, metricNameRE)
		case kind == "Counter" && !strings.HasSuffix(name, "_total"):
			p.Reportf(nameArg.Pos(), "counter family name %q must end in _total (Prometheus counter convention; rate() queries depend on it)", name)
		case kind != "Counter" && strings.HasSuffix(name, "_total"):
			p.Reportf(nameArg.Pos(), "%s family name %q must not end in _total: the suffix marks counters", strings.ToLower(kind), name)
		}
	}
	if call.Ellipsis.IsValid() {
		// labels... forwarding: the slice's contents are not statically
		// visible here; the forwarding helper is the place to annotate.
		p.Reportf(call.Ellipsis, "label names forwarded as a slice in %s registration: label sets must be declared as constants at the registration site, or the helper needs //dataplane:allow metriclint <reason>", kind)
		return
	}
	for i := labelStart; i < len(call.Args); i++ {
		label, isConst := constString(p, call.Args[i])
		if !isConst {
			p.Reportf(call.Args[i].Pos(), "dynamically built label name in %s registration: label sets must be compile-time constants", kind)
			continue
		}
		if !labelNameRE.MatchString(label) {
			p.Reportf(call.Args[i].Pos(), "label name %q does not match %s", label, labelNameRE)
		}
	}
}

// constString returns the compile-time string value of e, if it has one.
func constString(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
