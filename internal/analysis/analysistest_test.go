package analysis

// An analysistest-style golden-test harness, stdlib-only. Fixture
// packages live under testdata/src/<path>; a test names the fixture
// packages in dependency order and the harness parses and type-checks
// them against each other (imports between fixtures resolve by their
// directory name) and against the real standard library (via export
// data from `go list -export`, so it works offline).
//
// Expected diagnostics are `// want "regex"` comments: every diagnostic
// must land on a line carrying a want whose regex matches its message,
// and every want must be matched. Facts flow between fixture packages
// exactly as the drivers propagate them, so cross-package checks
// (singlewriter's cell facts) are testable.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// stdExports maps standard-library import paths to export-data files,
// produced once per test binary.
var stdExports = sync.OnceValues(func() (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", "fmt", "sync/atomic")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list std deps: %v\n%s", err, stderr.String())
	}
	out := map[string]string{}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			return nil, err
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
})

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	facts map[string][]string // analyzer → exported facts
}

// fixtureImporter resolves fixture-local imports by path, falling back
// to standard-library export data.
type fixtureImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.local[path]; ok {
		return p, nil
	}
	return fi.std.Import(path)
}

// loadFixtures type-checks the named testdata/src packages in order.
func loadFixtures(t *testing.T, fset *token.FileSet, paths ...string) []*fixturePkg {
	t.Helper()
	exports, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	imp := &fixtureImporter{
		local: map[string]*types.Package{},
		std: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("fixture imports %q, which is not in the harness's std set", path)
			}
			return os.Open(file)
		}),
	}
	var out []*fixturePkg
	for _, path := range paths {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", build.Default.GOARCH)}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", path, err)
		}
		imp.local[path] = tpkg
		out = append(out, &fixturePkg{
			path:  path,
			files: files,
			pkg:   tpkg,
			info:  info,
			facts: map[string][]string{},
		})
	}
	return out
}

// diag is one reported diagnostic, resolved to a position.
type diag struct {
	pos token.Position
	msg string
}

// runFixtures drives one analyzer over the fixture packages in order,
// threading facts, and returns all diagnostics.
func runFixtures(t *testing.T, a *Analyzer, pkgs []*fixturePkg, fset *token.FileSet) []diag {
	t.Helper()
	var out []diag
	for i, p := range pkgs {
		p := p
		var depFacts []string
		for _, d := range pkgs[:i] {
			depFacts = append(depFacts, d.facts[a.Name]...)
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      p.files,
			Pkg:        p.pkg,
			Info:       p.info,
			Sizes:      types.SizesFor("gc", build.Default.GOARCH),
			DepFacts:   func() []string { return depFacts },
			ExportFact: func(fact string) { p.facts[a.Name] = append(p.facts[a.Name], fact) },
			Report: func(d Diagnostic) {
				out = append(out, diag{pos: fset.Position(d.Pos), msg: d.Message})
			},
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on fixture %s: %v", a.Name, p.path, err)
		}
	}
	return out
}

var wantRE = regexp.MustCompile(`// want ((?:\x60[^\x60]*\x60|"(?:[^"\\]|\\.)*")(?:\s+(?:\x60[^\x60]*\x60|"(?:[^"\\]|\\.)*"))*)`)
var wantArgRE = regexp.MustCompile(`\x60[^\x60]*\x60|"(?:[^"\\]|\\.)*"`)

// wantExpectation is one `// want` regex at a file:line.
type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants scans the fixture sources for `// want` comments.
func collectWants(t *testing.T, pkgs []*fixturePkg, fset *token.FileSet) []*wantExpectation {
	t.Helper()
	seen := map[string]bool{}
	var out []*wantExpectation
	for _, p := range pkgs {
		for _, f := range p.files {
			name := fset.Position(f.Package).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, lineText := range strings.Split(string(src), "\n") {
				m := wantRE.FindStringSubmatch(lineText)
				if m == nil {
					continue
				}
				for _, arg := range wantArgRE.FindAllString(m[1], -1) {
					var pattern string
					if arg[0] == '`' {
						pattern = arg[1 : len(arg)-1]
					} else {
						unq := arg[1 : len(arg)-1]
						pattern = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(unq)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %s: %v", name, i+1, arg, err)
					}
					out = append(out, &wantExpectation{file: name, line: i + 1, re: re})
				}
			}
		}
	}
	return out
}

// checkFixtures runs the analyzer over the fixture packages (dependency
// order) and diffs diagnostics against the `// want` comments.
func checkFixtures(t *testing.T, a *Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := loadFixtures(t, fset, paths...)
	diags := runFixtures(t, a, pkgs, fset)
	wants := collectWants(t, pkgs, fset)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.pos.Filename && w.line == d.pos.Line && w.re.MatchString(d.msg) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.pos.Filename, d.pos.Line, d.msg)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}
