package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc flags allocation sources inside functions annotated
// //dataplane:hotpath. The dataplane's worker loops, ring operations,
// hand-off paths, metric cells and element Process methods must run
// allocation-free (the generalized BitTorrentBlocker 0 allocs/op
// discipline): a single escape to the heap inside a packet loop turns
// into GC pressure at millions of packets per second, and — worse for
// this repo's purpose — into cycles the performance model never charged.
//
// The check is syntactic and type-based, not a full escape analysis: it
// flags the constructs that are heap allocations (or become ones under
// trivial escape), and the amortized buffer-reuse idiom x = append(x, ...)
// is the one growth pattern it admits, because the dynamic
// TestHotPathAllocs gate proves it settles to zero allocations per
// operation in steady state.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "check that //dataplane:hotpath functions are allocation-free: " +
		"no make/new, no escaping or slice/map composite literals, no growing " +
		"appends (except self-append buffer reuse), no map writes, no capturing " +
		"closures or go statements, no interface boxing, no fmt or string building",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(p *Pass) error {
	for _, f := range p.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := hasDirective(fd.Doc, "hotpath"); !ok {
				continue
			}
			checkHotPath(p, fd)
		}
	}
	return nil
}

// walkWithParents visits every node under root with its ancestor chain
// (nearest last).
func walkWithParents(root ast.Node, fn func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

func checkHotPath(p *Pass, fd *ast.FuncDecl) {
	walkWithParents(fd.Body, func(n ast.Node, parents []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n)
		case *ast.CompositeLit:
			checkHotCompositeLit(p, n, parents)
		case *ast.AssignStmt:
			checkHotAssign(p, n)
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "go statement in hot path: spawning a goroutine allocates")
		case *ast.FuncLit:
			checkHotFuncLit(p, n, fd)
		case *ast.BinaryExpr:
			checkHotStringConcat(p, n, parents)
		case *ast.ReturnStmt:
			checkHotReturn(p, n, fd, parents)
		case *ast.ValueSpec:
			checkHotValueSpec(p, n)
		}
	})
}

func checkHotCall(p *Pass, call *ast.CallExpr) {
	// Builtins: make and new always allocate; append may grow.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				p.Reportf(call.Pos(), "make in hot path allocates; hoist the buffer to setup time")
			case "new":
				p.Reportf(call.Pos(), "new in hot path allocates; hoist the object to setup time")
			}
			return
		}
	}
	// Conversions between strings and byte/rune slices copy.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		if src, ok := p.Info.Types[call.Args[0]]; ok && stringConversionAllocates(dst, src.Type) {
			p.Reportf(call.Pos(), "string conversion in hot path copies its bytes; keep one representation")
		}
		return
	}
	// Calls into fmt build interfaces and buffers on every call.
	if obj := calleeObject(p, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "fmt.%s in hot path allocates; format off the hot path or record raw values", obj.Name())
		return
	}
	// Concrete arguments passed as interface parameters are boxed.
	sig := calleeSignature(p, call)
	if sig == nil || call.Ellipsis.IsValid() {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(p, pt, arg) {
			p.Reportf(arg.Pos(), "argument is boxed into interface %s; interface conversion of a non-pointer value allocates", pt.String())
		}
	}
}

// calleeObject resolves the called function or method object, nil for
// indirect calls through expressions.
func calleeObject(p *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// calleeSignature returns the call's signature, nil for builtins and
// conversions.
func calleeSignature(p *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func checkHotCompositeLit(p *Pass, lit *ast.CompositeLit, parents []ast.Node) {
	if len(parents) > 0 {
		if u, ok := parents[len(parents)-1].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			p.Reportf(lit.Pos(), "&composite literal in hot path escapes to the heap; reuse a preallocated object")
			return
		}
		// Inner literals of an already-flagged slice/map literal would
		// double-report; only the outermost backing store allocates.
		if _, ok := parents[len(parents)-1].(*ast.CompositeLit); ok {
			return
		}
	}
	tv, ok := p.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		p.Reportf(lit.Pos(), "slice literal in hot path allocates its backing array")
	case *types.Map:
		p.Reportf(lit.Pos(), "map literal in hot path allocates")
	}
}

func checkHotAssign(p *Pass, as *ast.AssignStmt) {
	// Map writes may grow or rehash the table.
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if tv, ok := p.Info.Types[ix.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					p.Reportf(lhs.Pos(), "map write in hot path may allocate (growth, rehash); use a preallocated dense structure or annotate the intended exception")
				}
			}
		}
	}
	// Growing appends, except the x = append(x, ...) reuse idiom.
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isBuiltin(p, call, "append") {
			if !selfAppend(as.Lhs[0], call) {
				p.Reportf(call.Pos(), "append into a different slice may grow on every call; reuse one buffer (x = append(x, ...)) so growth amortizes to zero")
			}
			return
		}
	}
	// Boxing through plain assignment to an interface-typed location.
	if as.Tok.String() == "=" && len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			if lt, ok := p.Info.Types[as.Lhs[i]]; ok && boxes(p, lt.Type, as.Rhs[i]) {
				p.Reportf(as.Rhs[i].Pos(), "value is boxed into interface %s on assignment", lt.Type.String())
			}
		}
	}
	// Appends whose results are discarded or multi-assigned are growth.
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		for _, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(p, call, "append") {
				p.Reportf(call.Pos(), "append result not reassigned to its source slice; growth never amortizes")
			}
		}
	}
}

// selfAppend reports whether call is append(dst, ...) growing dst itself
// (or dst[:0], the reset-and-refill idiom) assigned back to dst.
func selfAppend(lhs ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	first := ast.Unparen(call.Args[0])
	if sl, ok := first.(*ast.SliceExpr); ok && sl.Low == nil && sl.High != nil {
		// append(x[:0], ...) and append(x[:n], ...) reuse x's storage.
		first = ast.Unparen(sl.X)
	}
	return exprString(lhs) == exprString(first)
}

func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func checkHotFuncLit(p *Pass, fl *ast.FuncLit, fd *ast.FuncDecl) {
	captured := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// A variable declared inside the enclosing function but outside
		// this literal is captured by reference.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < fl.Pos() || v.Pos() >= fl.End()) {
			captured = v.Name()
		}
		return true
	})
	if captured != "" {
		p.Reportf(fl.Pos(), "closure captures %q by reference: the variable and the closure escape to the heap", captured)
	}
}

func checkHotStringConcat(p *Pass, be *ast.BinaryExpr, parents []ast.Node) {
	if be.Op.String() != "+" {
		return
	}
	tv, ok := p.Info.Types[be]
	if !ok || tv.Value != nil { // constant-folded concatenation is free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	// Report only the outermost + of a chain.
	if len(parents) > 0 {
		if pb, ok := parents[len(parents)-1].(*ast.BinaryExpr); ok && pb.Op.String() == "+" {
			if ptv, ok := p.Info.Types[pb]; ok && ptv.Value == nil {
				if b, ok := ptv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return
				}
			}
		}
	}
	p.Reportf(be.Pos(), "string concatenation in hot path allocates; precompute the string or log indices instead")
}

func checkHotReturn(p *Pass, ret *ast.ReturnStmt, fd *ast.FuncDecl, parents []ast.Node) {
	sig := enclosingSignature(p, fd, parents)
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		if boxes(p, sig.Results().At(i).Type(), res) {
			p.Reportf(res.Pos(), "return value is boxed into interface %s", sig.Results().At(i).Type().String())
		}
	}
}

// enclosingSignature finds the signature governing a return statement:
// the innermost func literal among parents, else the declaration.
func enclosingSignature(p *Pass, fd *ast.FuncDecl, parents []ast.Node) *types.Signature {
	for i := len(parents) - 1; i >= 0; i-- {
		if fl, ok := parents[i].(*ast.FuncLit); ok {
			if tv, ok := p.Info.Types[fl]; ok {
				sig, _ := tv.Type.Underlying().(*types.Signature)
				return sig
			}
			return nil
		}
	}
	if obj, ok := p.Info.Defs[fd.Name]; ok && obj != nil {
		sig, _ := obj.Type().Underlying().(*types.Signature)
		return sig
	}
	return nil
}

func checkHotValueSpec(p *Pass, vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	tv, ok := p.Info.Types[vs.Type]
	if !ok {
		return
	}
	for _, v := range vs.Values {
		if boxes(p, tv.Type, v) {
			p.Reportf(v.Pos(), "value is boxed into interface %s at declaration", tv.Type.String())
		}
	}
}

// boxes reports whether assigning src into a location of type dst is an
// allocating interface conversion: dst is an interface, src's type is
// concrete, and src is not pointer-shaped (pointers, channels, maps and
// funcs fit an interface word directly).
func boxes(p *Pass, dst types.Type, src ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := p.Info.Types[src]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	st := tv.Type
	if st == types.Typ[types.Invalid] {
		return false
	}
	if _, ok := st.Underlying().(*types.Interface); ok {
		return false
	}
	return !pointerShaped(st)
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringConversionAllocates reports whether a conversion from src to dst
// copies string/slice bytes.
func stringConversionAllocates(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}
