package netpkt

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func validPacket(src, dst uint32, proto uint8, totalLen int) []byte {
	b := make([]byte, totalLen)
	WriteIPv4(b, IPv4Header{
		TotalLen: uint16(totalLen),
		ID:       42,
		TTL:      64,
		Proto:    proto,
		Src:      src,
		Dst:      dst,
	})
	return b
}

func TestWriteParseRoundTrip(t *testing.T) {
	b := validPacket(0x0a000001, 0xc0a80101, ProtoUDP, 64)
	h, err := ParseIPv4(b)
	if err != nil {
		t.Fatalf("ParseIPv4: %v", err)
	}
	if h.Src != 0x0a000001 || h.Dst != 0xc0a80101 || h.Proto != ProtoUDP || h.TTL != 64 || h.TotalLen != 64 {
		t.Fatalf("parsed header mismatch: %+v", h)
	}
}

func TestParseRejectsBadPackets(t *testing.T) {
	good := validPacket(1, 2, ProtoTCP, 64)

	short := good[:10]
	if _, err := ParseIPv4(short); err != ErrTooShort {
		t.Fatalf("short: %v, want ErrTooShort", err)
	}

	v6 := append([]byte(nil), good...)
	v6[0] = 0x65
	if _, err := ParseIPv4(v6); err != ErrBadVersion {
		t.Fatalf("version: %v, want ErrBadVersion", err)
	}

	ihl := append([]byte(nil), good...)
	ihl[0] = 0x46
	if _, err := ParseIPv4(ihl); err != ErrBadHeaderLen {
		t.Fatalf("ihl: %v, want ErrBadHeaderLen", err)
	}

	long := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(long[2:], 2000)
	if _, err := ParseIPv4(long); err != ErrBadLength {
		t.Fatalf("len: %v, want ErrBadLength", err)
	}

	bad := append([]byte(nil), good...)
	bad[15] ^= 0xff // corrupt src without fixing checksum
	if _, err := ParseIPv4(bad); err != ErrBadChecksum {
		t.Fatalf("checksum: %v, want ErrBadChecksum", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 discussions.
	b := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	if got := Checksum(b); got != 0xb861 {
		t.Fatalf("Checksum = %#x, want 0xb861", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	even := Checksum([]byte{0x12, 0x34, 0x56, 0x00})
	odd := Checksum([]byte{0x12, 0x34, 0x56})
	if even != odd {
		t.Fatalf("odd-length padding mismatch: %#x vs %#x", odd, even)
	}
}

func TestDecTTL(t *testing.T) {
	b := validPacket(1, 2, ProtoUDP, 64)
	if err := DecTTL(b); err != nil {
		t.Fatalf("DecTTL: %v", err)
	}
	h, err := ParseIPv4(b)
	if err != nil {
		t.Fatalf("header invalid after DecTTL: %v", err)
	}
	if h.TTL != 63 {
		t.Fatalf("TTL = %d, want 63", h.TTL)
	}
}

func TestDecTTLExpired(t *testing.T) {
	b := validPacket(1, 2, ProtoUDP, 64)
	b[8] = 1
	binary.BigEndian.PutUint16(b[10:], 0)
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
	if err := DecTTL(b); err != ErrTTLExpired {
		t.Fatalf("DecTTL = %v, want ErrTTLExpired", err)
	}
}

// Property (RFC 1624): incremental checksum update after a TTL decrement
// matches a full recomputation, for arbitrary headers.
func TestDecTTLIncrementalMatchesRecomputeQuick(t *testing.T) {
	f := func(src, dst uint32, id uint16, ttl uint8, proto uint8) bool {
		if ttl <= 1 {
			ttl = 2
		}
		b := make([]byte, 64)
		WriteIPv4(b, IPv4Header{TotalLen: 64, ID: id, TTL: ttl, Proto: proto, Src: src, Dst: dst})
		if err := DecTTL(b); err != nil {
			return false
		}
		// A correct incremental update leaves the checksum valid.
		return Checksum(b[:IPv4HeaderLen]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractFiveTuple(t *testing.T) {
	b := validPacket(0x01020304, 0x05060708, ProtoTCP, 64)
	binary.BigEndian.PutUint16(b[IPv4HeaderLen:], 1234)
	binary.BigEndian.PutUint16(b[IPv4HeaderLen+2:], 80)
	ft, err := ExtractFiveTuple(b)
	if err != nil {
		t.Fatalf("ExtractFiveTuple: %v", err)
	}
	want := FiveTuple{Src: 0x01020304, Dst: 0x05060708, SrcPort: 1234, DstPort: 80, Proto: ProtoTCP}
	if ft != want {
		t.Fatalf("five-tuple = %+v, want %+v", ft, want)
	}
}

func TestExtractFiveTupleNonTransport(t *testing.T) {
	b := validPacket(1, 2, 47 /* GRE */, 64)
	ft, err := ExtractFiveTuple(b)
	if err != nil {
		t.Fatalf("ExtractFiveTuple: %v", err)
	}
	if ft.SrcPort != 0 || ft.DstPort != 0 {
		t.Fatalf("non-transport packet must have zero ports, got %+v", ft)
	}
}

func TestFiveTupleHashDistinguishes(t *testing.T) {
	a := FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}
	b := a
	b.SrcPort = 5
	if a.Hash() == b.Hash() {
		t.Fatal("distinct tuples should hash differently")
	}
	if a.Hash() != a.Hash() {
		t.Fatal("hash must be deterministic")
	}
}

func TestAddrString(t *testing.T) {
	if s := AddrString(0xc0a80101); s != "192.168.1.1" {
		t.Fatalf("AddrString = %q", s)
	}
}

func TestRewriteSrcKeepsChecksumValid(t *testing.T) {
	for _, proto := range []uint8{ProtoTCP, ProtoUDP, 47} {
		b := make([]byte, 64)
		WriteIPv4(b, IPv4Header{TotalLen: 64, ID: 7, TTL: 64, Proto: proto,
			Src: 0x0a000001, Dst: 0x0a000002})
		binary.BigEndian.PutUint16(b[IPv4HeaderLen:], 1234)
		if err := RewriteSrc(b, 0xc6336401, 4242); err != nil {
			t.Fatalf("RewriteSrc: %v", err)
		}
		h, err := ParseIPv4(b)
		if err != nil {
			t.Fatalf("proto %d: rewritten header invalid: %v", proto, err)
		}
		if h.Src != 0xc6336401 {
			t.Fatalf("src = %08x", h.Src)
		}
		port := binary.BigEndian.Uint16(b[IPv4HeaderLen:])
		if proto == 47 {
			if port != 1234 {
				t.Fatal("non-TCP/UDP payload must not be rewritten")
			}
		} else if port != 4242 {
			t.Fatalf("src port = %d, want 4242", port)
		}
	}
	if err := RewriteSrc(make([]byte, 10), 1, 2); err == nil {
		t.Fatal("short packet accepted")
	}
}
