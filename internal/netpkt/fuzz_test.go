package netpkt

import (
	"testing"
	"testing/quick"

	"pktpredict/internal/rng"
)

// Property: ParseIPv4 and ExtractFiveTuple never panic on arbitrary
// bytes — malformed packets are the normal case on a network interface.
func TestParseNeverPanicsQuick(t *testing.T) {
	f := func(seed uint64, n uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		b := make([]byte, int(n))
		rng.New(seed).Fill(b)
		ParseIPv4(b)
		ExtractFiveTuple(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any header accepted by ParseIPv4 survives a
// parse-write-parse round trip with identical fields.
func TestParseWriteRoundTripQuick(t *testing.T) {
	f := func(src, dst uint32, id uint16, ttl, proto uint8, extra uint8) bool {
		if ttl == 0 {
			ttl = 1
		}
		total := IPv4HeaderLen + int(extra)
		b := make([]byte, total)
		WriteIPv4(b, IPv4Header{
			TotalLen: uint16(total), ID: id, TTL: ttl, Proto: proto, Src: src, Dst: dst,
		})
		h, err := ParseIPv4(b)
		if err != nil {
			return false
		}
		b2 := make([]byte, total)
		WriteIPv4(b2, h)
		h2, err := ParseIPv4(b2)
		if err != nil {
			return false
		}
		return h == h2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupting any single header byte of a valid packet makes
// the checksum validation fail (except the corruption that is a no-op).
func TestChecksumDetectsSingleByteCorruptionQuick(t *testing.T) {
	f := func(src, dst uint32, pos uint8, flip uint8) bool {
		b := make([]byte, 64)
		WriteIPv4(b, IPv4Header{TotalLen: 64, TTL: 64, Proto: ProtoUDP, Src: src, Dst: dst})
		p := int(pos) % IPv4HeaderLen
		if flip == 0 {
			return true // no-op corruption
		}
		b[p] ^= flip
		_, err := ParseIPv4(b)
		// Any corruption must be rejected: either the checksum catches it
		// or a structural check does. (A corruption of the checksum field
		// itself is also caught by the checksum.)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
