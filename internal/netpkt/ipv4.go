// Package netpkt implements the wire formats the packet-processing
// applications operate on: IPv4 headers with RFC 1071 checksums and
// TCP/UDP 5-tuple extraction. Everything works on real bytes — packets in
// this system carry genuine, parseable headers, and the forwarding path
// performs genuine checksum arithmetic, exactly the work the paper's "full
// IP forwarding" performs per packet.
package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// IPv4HeaderLen is the length of an IPv4 header without options. All
// traffic generated in this system uses option-less headers, as do the
// paper's generators.
const IPv4HeaderLen = 20

// Protocol numbers used by the workloads.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Errors returned by CheckIPHeader-style validation.
var (
	ErrTooShort     = errors.New("netpkt: packet shorter than IPv4 header")
	ErrBadVersion   = errors.New("netpkt: not an IPv4 packet")
	ErrBadHeaderLen = errors.New("netpkt: bad IHL")
	ErrBadChecksum  = errors.New("netpkt: header checksum mismatch")
	ErrBadLength    = errors.New("netpkt: total length exceeds packet")
	ErrTTLExpired   = errors.New("netpkt: TTL expired")
)

// IPv4Header is a decoded IPv4 header.
type IPv4Header struct {
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    uint8
	Checksum uint16
	Src      uint32
	Dst      uint32
}

// String renders the header compactly for diagnostics.
func (h IPv4Header) String() string {
	return fmt.Sprintf("IPv4 %s -> %s proto=%d ttl=%d len=%d",
		AddrString(h.Src), AddrString(h.Dst), h.Proto, h.TTL, h.TotalLen)
}

// AddrString renders a uint32 IPv4 address in dotted-quad form.
func AddrString(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ParseIPv4 decodes and validates the IPv4 header at the start of b,
// performing the checks Click's CheckIPHeader element performs: version,
// header length, total length, and header checksum.
func ParseIPv4(b []byte) (IPv4Header, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, ErrTooShort
	}
	if b[0]>>4 != 4 {
		return h, ErrBadVersion
	}
	if ihl := int(b[0]&0x0f) * 4; ihl != IPv4HeaderLen {
		return h, ErrBadHeaderLen
	}
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	if int(h.TotalLen) > len(b) || int(h.TotalLen) < IPv4HeaderLen {
		return h, ErrBadLength
	}
	h.ID = binary.BigEndian.Uint16(b[4:])
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:])
	h.Src = binary.BigEndian.Uint32(b[12:])
	h.Dst = binary.BigEndian.Uint32(b[16:])
	if Checksum(b[:IPv4HeaderLen]) != 0 {
		return h, ErrBadChecksum
	}
	return h, nil
}

// WriteIPv4 encodes h (with a freshly computed checksum) into b, which
// must have room for IPv4HeaderLen bytes.
func WriteIPv4(b []byte, h IPv4Header) {
	_ = b[IPv4HeaderLen-1]
	b[0] = 0x45
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], 0) // no fragmentation
	b[8] = h.TTL
	b[9] = h.Proto
	binary.BigEndian.PutUint16(b[10:], 0)
	binary.BigEndian.PutUint32(b[12:], h.Src)
	binary.BigEndian.PutUint32(b[16:], h.Dst)
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
}

// Checksum computes the RFC 1071 Internet checksum over b. Computing it
// over a header whose checksum field holds the correct value yields 0.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// DecTTL performs the forwarding-path TTL decrement on the raw header in
// b, updating the checksum incrementally per RFC 1624 rather than
// recomputing it — the same optimisation real forwarding paths (and
// Click's DecIPTTL) use. It returns ErrTTLExpired without modifying the
// packet when the TTL is already ≤ 1.
func DecTTL(b []byte) error {
	_ = b[IPv4HeaderLen-1]
	if b[8] <= 1 {
		return ErrTTLExpired
	}
	// RFC 1624: HC' = ~(~HC + ~m + m'), with m the 16-bit word containing
	// the TTL. TTL is the high byte of word 4 (bytes 8-9).
	old := binary.BigEndian.Uint16(b[8:])
	b[8]--
	new_ := binary.BigEndian.Uint16(b[8:])
	hc := binary.BigEndian.Uint16(b[10:])
	sum := uint32(^hc) + uint32(^old&0xffff) + uint32(new_)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	binary.BigEndian.PutUint16(b[10:], ^uint16(sum))
	return nil
}

// RewriteSrc rewrites the packet's IPv4 source address in place —
// the NAT data-path operation — updating the header checksum
// incrementally per RFC 1624 rather than recomputing it. For TCP/UDP
// packets long enough to carry ports, the source port is rewritten too.
// (Transport checksums are not maintained: generated traffic carries
// zero L4 checksums, as the paper's crafted traffic does.)
func RewriteSrc(b []byte, src uint32, srcPort uint16) error {
	if len(b) < IPv4HeaderLen {
		return ErrTooShort
	}
	// RFC 1624: HC' = ~(~HC + Σ(~m + m')) over the changed 16-bit words;
	// the source address occupies words 6 and 7 (bytes 12-15).
	old1 := binary.BigEndian.Uint16(b[12:])
	old2 := binary.BigEndian.Uint16(b[14:])
	binary.BigEndian.PutUint32(b[12:], src)
	new1 := binary.BigEndian.Uint16(b[12:])
	new2 := binary.BigEndian.Uint16(b[14:])
	hc := binary.BigEndian.Uint16(b[10:])
	sum := uint32(^hc) + uint32(^old1) + uint32(new1) + uint32(^old2) + uint32(new2)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	binary.BigEndian.PutUint16(b[10:], ^uint16(sum))
	if proto := b[9]; (proto == ProtoTCP || proto == ProtoUDP) && len(b) >= IPv4HeaderLen+2 {
		binary.BigEndian.PutUint16(b[IPv4HeaderLen:], srcPort)
	}
	return nil
}

// FiveTuple identifies a transport-layer flow.
type FiveTuple struct {
	Src, Dst         uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// ExtractFiveTuple reads the 5-tuple from a packet with an IPv4 header at
// offset 0 followed by a TCP/UDP header. Non-TCP/UDP packets yield zero
// ports.
func ExtractFiveTuple(b []byte) (FiveTuple, error) {
	h, err := ParseIPv4(b)
	if err != nil {
		return FiveTuple{}, err
	}
	ft := FiveTuple{Src: h.Src, Dst: h.Dst, Proto: h.Proto}
	if (h.Proto == ProtoTCP || h.Proto == ProtoUDP) && len(b) >= IPv4HeaderLen+4 {
		ft.SrcPort = binary.BigEndian.Uint16(b[IPv4HeaderLen:])
		ft.DstPort = binary.BigEndian.Uint16(b[IPv4HeaderLen+2:])
	}
	return ft, nil
}

// Hash returns a 64-bit hash of the 5-tuple using an FNV-1a-style mix —
// the per-packet hashing step NetFlow-style monitoring performs.
func (ft FiveTuple) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64, bytes int) {
		for i := 0; i < bytes; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(ft.Src), 4)
	mix(uint64(ft.Dst), 4)
	mix(uint64(ft.SrcPort), 2)
	mix(uint64(ft.DstPort), 2)
	mix(uint64(ft.Proto), 1)
	return h
}
