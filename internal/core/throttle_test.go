package core

import (
	"testing"

	"pktpredict/internal/apps"
)

func TestContainmentValidation(t *testing.T) {
	sc := Scenario{
		Cfg:    testCfg(),
		Params: apps.Small(),
		Flows:  []FlowSpec{{Type: apps.IP, Core: 0, Domain: 0, Seed: 1, Control: true}},
	}
	res, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctl := res.Instances[0].Control
	if _, err := NewContainment(res.Engine, 5, ctl, 1e6); err == nil {
		t.Fatal("bad flow index must fail")
	}
	if _, err := NewContainment(res.Engine, 0, nil, 1e6); err == nil {
		t.Fatal("nil control must fail")
	}
	if _, err := NewContainment(res.Engine, 0, ctl, 0); err == nil {
		t.Fatal("zero limit must fail")
	}
}

func TestContainmentClampsHiddenAggressor(t *testing.T) {
	if testing.Short() {
		t.Skip("long containment loop")
	}
	params := apps.Small()
	// Build the adversarial flow: FW for 500 packets, then SYN_MAX-like.
	sc := Scenario{
		Cfg:    testCfg(),
		Params: params,
		Flows:  []FlowSpec{{Type: apps.FW, Core: 0, Domain: 0, Seed: 1, HiddenTrigger: 500}},
	}
	res, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctl := res.Instances[0].Control
	if ctl == nil {
		t.Fatal("hidden aggressor must carry a control element")
	}

	// Profile the honest phase to establish the limit: run well below the
	// trigger.
	res.Engine.RunSeconds(0.0002)
	honest := res.Engine.Flows[0].Core.Counters
	if honest.Packets >= 500 {
		t.Fatalf("profiling window crossed the trigger (%d packets)", honest.Packets)
	}
	seconds := float64(honest.Cycles) / testCfg().ClockHz
	limit := float64(honest.L3Refs) / seconds

	cont, err := NewContainment(res.Engine, 0, ctl, limit)
	if err != nil {
		t.Fatal(err)
	}
	samples := cont.Run(0.0005, 30)

	// The flow must have turned aggressive at some point...
	peak := 0.0
	for _, s := range samples {
		if s.RefsPerSec > peak {
			peak = s.RefsPerSec
		}
	}
	if peak < limit*1.2 {
		t.Fatalf("aggression never manifested: peak %.0f vs limit %.0f", peak, limit)
	}
	// ...and the controller must clamp it back near the profiled rate.
	tail := samples[len(samples)-5:]
	for _, s := range tail {
		if s.RefsPerSec > limit*1.5 {
			t.Fatalf("flow still exceeds profiled rate at interval %d: %.0f vs limit %.0f (delay %d)",
				s.Interval, s.RefsPerSec, limit, s.DelayCycles)
		}
	}
	// The throttle must actually be engaged.
	if tail[len(tail)-1].DelayCycles == 0 {
		t.Fatal("control element never engaged")
	}
}

func TestContainmentLeavesHonestFlowAlone(t *testing.T) {
	params := apps.Small()
	sc := Scenario{
		Cfg:    testCfg(),
		Params: params,
		Flows:  []FlowSpec{{Type: apps.IP, Core: 0, Domain: 0, Seed: 1, Control: true}},
	}
	res, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Profile the honest flow at steady state: discard the cold-cache
	// warmup, as offline profiling does.
	res.Engine.RunSeconds(0.002)
	warm := res.Engine.Flows[0].Core.Counters
	res.Engine.RunSeconds(0.002)
	delta := res.Engine.Flows[0].Core.Counters.Sub(warm)
	limit := float64(delta.L3Refs) / (float64(delta.Cycles) / testCfg().ClockHz)

	cont, err := NewContainment(res.Engine, 0, res.Instances[0].Control, limit)
	if err != nil {
		t.Fatal(err)
	}
	samples := cont.Run(0.0005, 12)
	// An honest flow hovers at its profiled rate: any throttle engagement
	// must stay small relative to the flow's per-packet work, and the
	// observed rate must stay near the limit.
	cyclesPerPacket := float64(delta.Cycles) / float64(delta.Packets)
	last := samples[len(samples)-1]
	if float64(last.DelayCycles) > 0.10*cyclesPerPacket {
		t.Fatalf("honest flow ended up throttled: delay=%d vs %.0f cycles/packet",
			last.DelayCycles, cyclesPerPacket)
	}
	if last.RefsPerSec < limit*0.7 {
		t.Fatalf("honest flow lost throughput: %.0f vs limit %.0f", last.RefsPerSec, limit)
	}
}
