package core

import (
	"fmt"
	"sort"
	"strings"

	"pktpredict/internal/apps"
)

// Placement assigns a full machine's worth of flows to the two sockets.
// Within a socket, core assignment is symmetric (all cores are
// equivalent), so a placement is fully described by the two multisets.
type Placement struct {
	Socket0 []apps.FlowType
	Socket1 []apps.FlowType
	// AvgDrop is the contention-induced drop averaged over all flows —
	// the paper's overall-performance metric for a placement.
	AvgDrop float64
	// PerFlow holds each flow's drop, ordered socket 0 then socket 1, in
	// each socket's sorted-multiset order.
	PerFlow []FlowDrop
}

// FlowDrop is one flow's drop under a placement.
type FlowDrop struct {
	Type   apps.FlowType
	Socket int
	Drop   float64
}

// String renders the placement compactly.
func (p Placement) String() string {
	return fmt.Sprintf("{%s | %s} avg=%.1f%%",
		joinTypes(p.Socket0), joinTypes(p.Socket1), p.AvgDrop*100)
}

func joinTypes(ts []apps.FlowType) string {
	s := make([]string, len(ts))
	for i, t := range ts {
		s[i] = string(t)
	}
	return strings.Join(s, "+")
}

// PlacementEval is the outcome of exhaustively evaluating all distinct
// placements of a flow combination: the best and worst placements and the
// gain contention-aware scheduling could deliver (Figure 10).
type PlacementEval struct {
	Flows []apps.FlowType
	Best  Placement
	Worst Placement
	All   []Placement
	// Gain is Worst.AvgDrop − Best.AvgDrop: the maximum overall
	// improvement available to a contention-aware scheduler.
	Gain float64
}

// EvaluatePlacements simulates every distinct split of the given flows
// (one per core on the two-socket platform) and returns the best and
// worst placements by average drop. Socket evaluations are memoised by
// multiset through the predictor, since a socket's behaviour depends only
// on which flows share it (data is NUMA-local, so sockets are
// independent — the property Section 2.2's configuration establishes).
func EvaluatePlacements(p *Predictor, flows []apps.FlowType) (PlacementEval, error) {
	perSocket := p.Cfg.CoresPerSocket
	if len(flows) != 2*perSocket {
		return PlacementEval{}, fmt.Errorf("core: %d flows, want %d (one per core)",
			len(flows), 2*perSocket)
	}
	eval := PlacementEval{Flows: append([]apps.FlowType(nil), flows...)}

	seen := make(map[string]bool)
	splits := enumerateSplits(flows, perSocket)
	for _, split := range splits {
		k0, k1 := mixKey(split.s0), mixKey(split.s1)
		// Socket order is irrelevant: canonicalise the pair.
		pairKey := k0 + "|" + k1
		if k1 < k0 {
			pairKey = k1 + "|" + k0
		}
		if seen[pairKey] {
			continue
		}
		seen[pairKey] = true

		drops0, sorted0, err := p.MeasuredDrops(split.s0)
		if err != nil {
			return PlacementEval{}, err
		}
		drops1, sorted1, err := p.MeasuredDrops(split.s1)
		if err != nil {
			return PlacementEval{}, err
		}
		pl := Placement{Socket0: sorted0, Socket1: sorted1}
		var sum float64
		for i, d := range drops0 {
			pl.PerFlow = append(pl.PerFlow, FlowDrop{Type: sorted0[i], Socket: 0, Drop: d})
			sum += d
		}
		for i, d := range drops1 {
			pl.PerFlow = append(pl.PerFlow, FlowDrop{Type: sorted1[i], Socket: 1, Drop: d})
			sum += d
		}
		pl.AvgDrop = sum / float64(len(pl.PerFlow))
		eval.All = append(eval.All, pl)
	}
	if len(eval.All) == 0 {
		return PlacementEval{}, fmt.Errorf("core: no placements enumerated")
	}
	sort.Slice(eval.All, func(i, j int) bool { return eval.All[i].AvgDrop < eval.All[j].AvgDrop })
	eval.Best = eval.All[0]
	eval.Worst = eval.All[len(eval.All)-1]
	eval.Gain = eval.Worst.AvgDrop - eval.Best.AvgDrop
	return eval, nil
}

type split struct {
	s0, s1 []apps.FlowType
}

// enumerateSplits generates every distinct division of the flow multiset
// into two halves of size k, by choosing how many of each type go to
// socket 0.
func enumerateSplits(flows []apps.FlowType, k int) []split {
	counts := map[apps.FlowType]int{}
	var order []apps.FlowType
	for _, t := range flows {
		if counts[t] == 0 {
			order = append(order, t)
		}
		counts[t]++
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var out []split
	take := make([]int, len(order))
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(order) {
			if remaining != 0 {
				return
			}
			var s0, s1 []apps.FlowType
			for j, t := range order {
				for n := 0; n < take[j]; n++ {
					s0 = append(s0, t)
				}
				for n := 0; n < counts[t]-take[j]; n++ {
					s1 = append(s1, t)
				}
			}
			out = append(out, split{s0: s0, s1: s1})
			return
		}
		max := counts[order[i]]
		if max > remaining {
			max = remaining
		}
		for n := 0; n <= max; n++ {
			take[i] = n
			rec(i+1, remaining-n)
		}
		take[i] = 0
	}
	rec(0, k)
	return out
}

// GreedyPlacement is the contention-aware heuristic the literature
// proposes (e.g. Zhuravlev et al.): sort flows by solo refs/sec
// (aggressiveness) and deal them to sockets in alternating snake order,
// spreading aggressive flows apart. The paper's point is that even the
// best placement barely beats the worst; this heuristic lets callers
// check how close the cheap strategy lands to the exhaustive optimum.
func GreedyPlacement(p *Predictor, flows []apps.FlowType) ([]apps.FlowType, []apps.FlowType, error) {
	type ranked struct {
		t    apps.FlowType
		refs float64
	}
	rs := make([]ranked, len(flows))
	for i, t := range flows {
		s, err := p.Solo(t)
		if err != nil {
			return nil, nil, err
		}
		rs[i] = ranked{t: t, refs: s.L3RefsPerSec()}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].refs != rs[j].refs {
			return rs[i].refs > rs[j].refs
		}
		return rs[i].t < rs[j].t
	})
	var s0, s1 []apps.FlowType
	for i, r := range rs {
		// Snake order 0,1,1,0,0,1,1,0,... spreads the most aggressive
		// flows across sockets while balancing totals.
		if i%4 == 1 || i%4 == 2 {
			s1 = append(s1, r.t)
		} else {
			s0 = append(s0, r.t)
		}
	}
	return s0, s1, nil
}

// --- online re-placement -------------------------------------------------
//
// The exhaustive evaluation above is an offline tool; a running dataplane
// cannot afford to co-run-measure every placement. The live API below
// instead scores placements purely from the flows' *observed* refs/sec and
// their offline drop-versus-competition curves — the paper's prediction
// step 3 applied continuously — so a runtime can decide in microseconds
// whether moving a flow to another socket is worth it.

// LiveFlow describes one running flow for online placement decisions: its
// type, the socket it currently executes on, and its memory-reference rate
// observed over the last telemetry window.
type LiveFlow struct {
	Worker     int // opaque caller handle, returned in swap decisions
	Type       apps.FlowType
	Socket     int
	RefsPerSec float64
	// Pinned excludes the flow from swap candidates while keeping its
	// reference rate in every placement score — one stage of a
	// cross-worker service chain must not migrate away from its peers,
	// but it still contends for its socket's cache.
	Pinned bool
}

// PredictLiveDrops returns each flow's predicted contention-induced drop
// in the current placement: the flow's curve read at the sum of its
// socket co-residents' observed refs/sec. Flows whose type has no curve
// predict zero.
func PredictLiveDrops(curves map[apps.FlowType]Curve, flows []LiveFlow) []float64 {
	perSocket := map[int]float64{}
	for _, f := range flows {
		perSocket[f.Socket] += f.RefsPerSec
	}
	drops := make([]float64, len(flows))
	for i, f := range flows {
		competing := perSocket[f.Socket] - f.RefsPerSec
		if c, ok := curves[f.Type]; ok {
			drops[i] = c.DropAt(competing)
		}
	}
	return drops
}

// worstAvg scores a placement: the maximum predicted drop, with the mean
// as tiebreak.
func worstAvg(curves map[apps.FlowType]Curve, flows []LiveFlow) (worst, avg float64) {
	drops := PredictLiveDrops(curves, flows)
	for _, d := range drops {
		if d > worst {
			worst = d
		}
		avg += d
	}
	if len(drops) > 0 {
		avg /= float64(len(drops))
	}
	return worst, avg
}

// PlanRebalance searches for the single cross-socket swap of two flows
// that most reduces the worst predicted drop. It returns the indices into
// flows of the pair to exchange. No swap is proposed unless the current
// worst predicted drop exceeds threshold and the best swap improves it by
// more than margin (hysteresis against flapping). Pinned flows are never
// swapped but still weigh on every placement's score.
func PlanRebalance(curves map[apps.FlowType]Curve, flows []LiveFlow, threshold, margin float64) (i, j int, ok bool) {
	curWorst, curAvg := worstAvg(curves, flows)
	if curWorst <= threshold {
		return 0, 0, false
	}
	bestWorst, bestAvg := curWorst, curAvg
	bi, bj := -1, -1
	trial := make([]LiveFlow, len(flows))
	for a := 0; a < len(flows); a++ {
		for b := a + 1; b < len(flows); b++ {
			if flows[a].Pinned || flows[b].Pinned {
				continue
			}
			if flows[a].Socket == flows[b].Socket || flows[a].Type == flows[b].Type {
				continue
			}
			copy(trial, flows)
			trial[a].Socket, trial[b].Socket = flows[b].Socket, flows[a].Socket
			w, v := worstAvg(curves, trial)
			if w < bestWorst || (w == bestWorst && v < bestAvg) {
				bestWorst, bestAvg = w, v
				bi, bj = a, b
			}
		}
	}
	if bi < 0 || curWorst-bestWorst <= margin {
		return 0, 0, false
	}
	return bi, bj, true
}

// EvaluateSplit measures one specific split's average drop, for callers
// that want to score a heuristic placement against Best/Worst.
func EvaluateSplit(p *Predictor, s0, s1 []apps.FlowType) (float64, error) {
	drops0, _, err := p.MeasuredDrops(s0)
	if err != nil {
		return 0, err
	}
	drops1, _, err := p.MeasuredDrops(s1)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, d := range drops0 {
		sum += d
	}
	for _, d := range drops1 {
		sum += d
	}
	return sum / float64(len(drops0)+len(drops1)), nil
}
