// Package core implements the paper's contribution: predicting the
// contention-induced performance drop of packet-processing flows from
// solo profiling (Section 4), the Appendix-A analytical cache model, the
// contention-aware-scheduling evaluation (Section 5), and aggressiveness
// containment by memory-access throttling (Section 4).
package core

import (
	"fmt"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

// FlowSpec places one flow in a scenario: what it is, which core runs it,
// and which NUMA domain holds its data. Separating core and domain is
// what lets experiments expose contention for individual resources
// (Figure 3's three configurations).
type FlowSpec struct {
	Type   apps.FlowType
	Core   int
	Domain int
	Seed   uint64
	// SynCompute sets a SYN flow's compute cycles between accesses
	// (ignored for other types; SYN_MAX forces 0).
	SynCompute int
	// Control adds a throttling control element at the pipeline head.
	Control bool
	// HiddenTrigger, when positive, builds the Section 4 adversarial
	// flow: FW behaviour until this many packets, then SYN_MAX accesses.
	HiddenTrigger uint64
}

// Scenario is a complete co-run experiment: a platform configuration, a
// workload scale, the flow placement, and the measurement window.
type Scenario struct {
	Cfg    hw.Config
	Params apps.Params
	Flows  []FlowSpec
	Warmup float64 // virtual seconds before measuring
	Window float64 // virtual seconds measured
}

// RunResult gives access to everything a caller may need after a run:
// per-flow statistics for the measurement window, the built instances
// (for element counters), and the live engine (for continued runs, e.g.
// the throttling loop).
type RunResult struct {
	Platform  *hw.Platform
	Engine    *hw.Engine
	Instances []*apps.Instance
	Stats     []hw.FlowStats
}

// Build constructs the platform, flows, and engine without running
// anything, for callers that drive the engine themselves.
func (s Scenario) Build() (*RunResult, error) {
	if len(s.Flows) == 0 {
		return nil, fmt.Errorf("core: scenario has no flows")
	}
	platform := hw.NewPlatform(s.Cfg)
	engine := hw.NewEngine(platform)
	arenas := make(map[int]*mem.Arena)
	arena := func(d int) *mem.Arena {
		if a, ok := arenas[d]; ok {
			return a
		}
		a := mem.NewArena(d)
		arenas[d] = a
		return a
	}
	res := &RunResult{Platform: platform, Engine: engine}
	for i, f := range s.Flows {
		var inst *apps.Instance
		var err error
		a := arena(f.Domain)
		switch {
		case f.HiddenTrigger > 0:
			inst, err = s.Params.BuildHiddenAggressor(a, f.Seed, f.HiddenTrigger)
		case f.Type == apps.SYN:
			inst = s.Params.BuildSyn(a, f.Seed, f.SynCompute)
		case f.Type == apps.SYNMAX:
			inst = s.Params.BuildSyn(a, f.Seed, 0)
		case f.Control:
			inst, err = s.Params.BuildWithControl(f.Type, a, f.Seed)
		default:
			inst, err = s.Params.Build(f.Type, a, f.Seed)
		}
		if err != nil {
			return nil, fmt.Errorf("core: flow %d (%s): %w", i, f.Type, err)
		}
		label := fmt.Sprintf("%s/core%d", f.Type, f.Core)
		engine.Attach(f.Core, label, inst.Source)
		res.Instances = append(res.Instances, inst)
	}
	return res, nil
}

// Run builds the scenario and measures one window.
func (s Scenario) Run() (*RunResult, error) {
	res, err := s.Build()
	if err != nil {
		return nil, err
	}
	res.Stats = res.Engine.MeasureWindow(s.Warmup, s.Window)
	return res, nil
}

// SeedFor derives a stable per-flow seed from the flow type and its
// position, so a flow type behaves identically whether it runs solo or
// in any co-run slot.
func SeedFor(t apps.FlowType, idx int) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range []byte(t) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= uint64(idx)
	h *= 1099511628211
	return h
}
