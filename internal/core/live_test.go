package core

import (
	"math"
	"testing"

	"pktpredict/internal/apps"
)

// Hand-built curves: MON is contention-sensitive, SYN_MAX essentially
// immune — the shape the paper measures.
func liveCurves() map[apps.FlowType]Curve {
	return map[apps.FlowType]Curve{
		apps.MON: {Target: apps.MON, Points: []CurvePoint{
			{0, 0}, {50e6, 0.05}, {200e6, 0.30}, {400e6, 0.35},
		}},
		apps.SYNMAX: {Target: apps.SYNMAX, Points: []CurvePoint{
			{0, 0}, {400e6, 0.02},
		}},
	}
}

func TestPredictLiveDrops(t *testing.T) {
	curves := liveCurves()
	flows := []LiveFlow{
		{Worker: 0, Type: apps.MON, Socket: 0, RefsPerSec: 20e6},
		{Worker: 1, Type: apps.SYNMAX, Socket: 0, RefsPerSec: 200e6},
		{Worker: 2, Type: apps.MON, Socket: 1, RefsPerSec: 20e6},
	}
	drops := PredictLiveDrops(curves, flows)
	// MON on socket 0 competes with 200M refs/sec → 0.30.
	if math.Abs(drops[0]-0.30) > 1e-9 {
		t.Fatalf("MON@s0 predicted drop = %v, want 0.30", drops[0])
	}
	// MON alone on socket 1 → no competition → 0.
	if drops[2] != 0 {
		t.Fatalf("MON@s1 predicted drop = %v, want 0", drops[2])
	}
	// Unknown type predicts zero.
	unk := PredictLiveDrops(curves, []LiveFlow{{Type: apps.IP, Socket: 0, RefsPerSec: 1e6}})
	if unk[0] != 0 {
		t.Fatalf("unknown type predicted drop = %v, want 0", unk[0])
	}
}

func TestPlanRebalanceSeparatesThrashers(t *testing.T) {
	curves := liveCurves()
	// Pathological placement: each socket pairs a victim with a thrasher.
	flows := []LiveFlow{
		{Worker: 0, Type: apps.MON, Socket: 0, RefsPerSec: 20e6},
		{Worker: 1, Type: apps.SYNMAX, Socket: 0, RefsPerSec: 300e6},
		{Worker: 2, Type: apps.MON, Socket: 1, RefsPerSec: 20e6},
		{Worker: 3, Type: apps.SYNMAX, Socket: 1, RefsPerSec: 300e6},
	}
	i, j, ok := PlanRebalance(curves, flows, 0.10, 0.02)
	if !ok {
		t.Fatal("expected a rebalance proposal")
	}
	// The only sensible swap exchanges a MON with a SYN_MAX across
	// sockets, leaving victims together on one socket and thrashers on
	// the other.
	if flows[i].Socket == flows[j].Socket || flows[i].Type == flows[j].Type {
		t.Fatalf("proposed swap (%d,%d) is not a cross-socket cross-type pair", i, j)
	}
	// Applying the swap must reduce the worst predicted drop.
	before := PredictLiveDrops(curves, flows)
	flows[i].Socket, flows[j].Socket = flows[j].Socket, flows[i].Socket
	after := PredictLiveDrops(curves, flows)
	if maxOf(after) >= maxOf(before) {
		t.Fatalf("swap did not improve worst drop: before=%v after=%v", before, after)
	}
}

func TestPlanRebalanceRespectsThresholdAndMargin(t *testing.T) {
	curves := liveCurves()
	flows := []LiveFlow{
		{Worker: 0, Type: apps.MON, Socket: 0, RefsPerSec: 20e6},
		{Worker: 1, Type: apps.SYNMAX, Socket: 0, RefsPerSec: 300e6},
		{Worker: 2, Type: apps.MON, Socket: 1, RefsPerSec: 20e6},
		{Worker: 3, Type: apps.SYNMAX, Socket: 1, RefsPerSec: 300e6},
	}
	// Worst predicted drop is ~0.33; a threshold above it must suppress
	// any proposal.
	if _, _, ok := PlanRebalance(curves, flows, 0.9, 0.02); ok {
		t.Fatal("proposal above threshold")
	}
	// A margin larger than any attainable improvement must also suppress.
	if _, _, ok := PlanRebalance(curves, flows, 0.10, 10.0); ok {
		t.Fatal("proposal despite unattainable margin")
	}
	// An already-optimal placement proposes nothing.
	good := []LiveFlow{
		{Worker: 0, Type: apps.MON, Socket: 0, RefsPerSec: 20e6},
		{Worker: 2, Type: apps.MON, Socket: 0, RefsPerSec: 20e6},
		{Worker: 1, Type: apps.SYNMAX, Socket: 1, RefsPerSec: 300e6},
		{Worker: 3, Type: apps.SYNMAX, Socket: 1, RefsPerSec: 300e6},
	}
	if i, j, ok := PlanRebalance(curves, good, 0.10, 0.02); ok {
		t.Fatalf("proposal (%d,%d) for an already-separated placement", i, j)
	}
}

func TestRateControllerStep(t *testing.T) {
	rc := RateController{Limit: 100e6, Slack: 0.05}
	// Over the limit: delay grows proportionally.
	next, throttled := rc.Step(200e6, 1000, 0)
	if !throttled || next == 0 {
		t.Fatalf("Step over limit: next=%d throttled=%v", next, throttled)
	}
	if want := uint32(1000*(200e6/100e6-1)) + 1; next != want {
		t.Fatalf("Step over limit: next=%d want %d", next, want)
	}
	// Within the slack band: no change.
	if n, th := rc.Step(103e6, 1000, 42); n != 42 || th {
		t.Fatalf("Step in slack band: next=%d throttled=%v", n, th)
	}
	// Under the limit: delay shrinks, eventually to zero.
	n, th := rc.Step(50e6, 1000, 100)
	if th || n != 0 {
		t.Fatalf("Step under limit with large give: next=%d throttled=%v", n, th)
	}
	n, _ = rc.Step(99e6, 1000, 100)
	if n >= 100 || n == 0 {
		t.Fatalf("Step slightly under limit: next=%d, want gentle decrease", n)
	}
	// Degenerate telemetry leaves the delay untouched.
	if n, th := rc.Step(200e6, 0, 7); n != 7 || th {
		t.Fatalf("Step with zero cycles/packet: next=%d throttled=%v", n, th)
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestPlanRebalanceSkipsPinnedFlows(t *testing.T) {
	curves := liveCurves()
	// Same pathological placement as above, but the socket-0 pair belongs
	// to a service chain and is pinned: the only swaps that would help
	// involve a pinned flow, so no proposal may come out — while the
	// pinned flows' refs must still drive the prediction.
	flows := []LiveFlow{
		{Worker: 0, Type: apps.MON, Socket: 0, RefsPerSec: 20e6, Pinned: true},
		{Worker: 1, Type: apps.SYNMAX, Socket: 0, RefsPerSec: 300e6, Pinned: true},
		{Worker: 2, Type: apps.MON, Socket: 1, RefsPerSec: 20e6},
		{Worker: 3, Type: apps.SYNMAX, Socket: 1, RefsPerSec: 300e6},
	}
	drops := PredictLiveDrops(curves, flows)
	if drops[0] == 0 {
		t.Fatal("pinned thrasher no longer weighs on its victim's prediction")
	}
	if _, _, ok := PlanRebalance(curves, flows, 0.10, 0.02); ok {
		t.Fatal("rebalance proposed a swap involving pinned flows")
	}
	// Unpin one side: the cross-socket victim/thrasher exchange is legal
	// again.
	flows[0].Pinned, flows[1].Pinned = false, false
	if _, _, ok := PlanRebalance(curves, flows, 0.10, 0.02); !ok {
		t.Fatal("no proposal after unpinning")
	}
}
