package core

// Analytical models from the paper: Equation 1 (Section 3.3) relating a
// flow's performance drop to its hit-to-miss conversion rate, and the
// Appendix A probabilistic cache-sharing model that explains the shape of
// the conversion rate as a function of competition. The paper uses these
// to explain its observations, not to predict — prediction comes from the
// profiled curves in predict.go — and this package preserves that role.

// DropFromConversion evaluates Equation 1: the throughput drop of a flow
// achieving hitsPerSec cache hits per second in a solo run when a
// fraction kappa of those hits become misses, each costing deltaSeconds
// extra:
//
//	drop = 1 / (1 + 1/(δ·κ·h)) = δκh / (1 + δκh)
func DropFromConversion(hitsPerSec, kappa, deltaSeconds float64) float64 {
	x := deltaSeconds * kappa * hitsPerSec
	if x <= 0 {
		return 0
	}
	return x / (1 + x)
}

// WorstCaseDrop is Equation 1 with κ = 1: every solo-run hit becomes a
// miss. The paper's Figure 6 plots this bound against solo hits/sec for
// several values of δ.
func WorstCaseDrop(hitsPerSec, deltaSeconds float64) float64 {
	return DropFromConversion(hitsPerSec, 1, deltaSeconds)
}

// DeltaSeconds is the paper's platform-spec value of δ: 43.75 ns, the
// extra time to complete a memory reference that misses the L3 instead of
// hitting it.
const DeltaSeconds = 43.75e-9

// CacheModel is the Appendix A model: a target flow sharing a cache of C
// lines with competitors that access it uniformly. The target achieves Ht
// hits/sec during a solo run over W cacheable chunks.
type CacheModel struct {
	CacheLines       float64 // C
	TargetHitsPerSec float64 // Ht
	TargetChunks     float64 // W
}

// ConversionRate estimates the target's hit-to-miss conversion rate under
// competingRefsPerSec competing references:
//
//	p_ev = 1/C
//	p_t  = (Ht/W) / (Ht/W + Rc)
//	P(hit) = p_t / (1 − (1−p_ev)(1−p_t))
//	κ = 1 − P(hit)
//
// following the derivation in Appendix A, including its assumption that
// target and competitors slow down equally (which keeps the reference
// ratio constant during the run).
func (m CacheModel) ConversionRate(competingRefsPerSec float64) float64 {
	if competingRefsPerSec <= 0 {
		return 0
	}
	if m.CacheLines <= 0 || m.TargetChunks <= 0 || m.TargetHitsPerSec <= 0 {
		return 0
	}
	pev := 1 / m.CacheLines
	perChunk := m.TargetHitsPerSec / m.TargetChunks
	pt := perChunk / (perChunk + competingRefsPerSec)
	pHit := pt / (1 - (1-pev)*(1-pt))
	if pHit > 1 {
		pHit = 1
	}
	return 1 - pHit
}

// EstimatedDrop chains the Appendix A conversion estimate into Equation
// 1, yielding the model's drop-versus-competition curve (the analytical
// counterpart of the measured curves in Figure 7's discussion).
func (m CacheModel) EstimatedDrop(competingRefsPerSec, deltaSeconds float64) float64 {
	kappa := m.ConversionRate(competingRefsPerSec)
	return DropFromConversion(m.TargetHitsPerSec, kappa, deltaSeconds)
}
