package core

import (
	"fmt"
	"sort"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
)

// CurvePoint is one sample of a target flow's drop-versus-competition
// profile.
type CurvePoint struct {
	CompetingRefsPerSec float64
	Drop                float64
}

// Curve is a flow type's contention profile: measured performance drop as
// a function of aggregate competing L3 references per second, obtained by
// co-running the flow with SYN competitors at ramped rates (the paper's
// Section 4, step 2).
type Curve struct {
	Target apps.FlowType
	Points []CurvePoint // sorted by CompetingRefsPerSec, first is (0,0)
}

// DropAt interpolates the curve linearly at the given competition level;
// beyond the last measured point the curve is held flat, which the
// paper's "turning point" observation justifies.
func (c Curve) DropAt(refsPerSec float64) float64 {
	pts := c.Points
	if len(pts) == 0 || refsPerSec <= 0 {
		return 0
	}
	if refsPerSec >= pts[len(pts)-1].CompetingRefsPerSec {
		return pts[len(pts)-1].Drop
	}
	for i := 1; i < len(pts); i++ {
		if refsPerSec <= pts[i].CompetingRefsPerSec {
			x0, y0 := pts[i-1].CompetingRefsPerSec, pts[i-1].Drop
			x1, y1 := pts[i].CompetingRefsPerSec, pts[i].Drop
			if x1 == x0 {
				return y1
			}
			return y0 + (y1-y0)*(refsPerSec-x0)/(x1-x0)
		}
	}
	return pts[len(pts)-1].Drop
}

// String renders the curve compactly.
func (c Curve) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", c.Target)
	for _, p := range c.Points {
		fmt.Fprintf(&b, " (%.0fM,%.1f%%)", p.CompetingRefsPerSec/1e6, p.Drop*100)
	}
	return b.String()
}

// DefaultSweepGrid is the set of SYN compute-per-access values used to
// ramp competing references per second, from idle competitors to
// SYN_MAX. Lower compute means more refs/sec.
var DefaultSweepGrid = []int{3200, 1600, 800, 400, 200, 100, 50, 25, 0}

// Predictor implements the paper's three-step prediction method over a
// fixed platform configuration and workload scale. It memoises solo
// profiles and sweep curves: everything is derived from offline profiling
// and reused across predictions, exactly as an operator would use it.
type Predictor struct {
	Cfg       hw.Config
	Params    apps.Params
	Warmup    float64
	Window    float64
	SweepGrid []int
	// Competitors is the number of SYN co-runners used in sweeps (the
	// paper uses 5: one target plus five competitors fill a socket).
	Competitors int

	solo   map[apps.FlowType]hw.FlowStats
	curves map[apps.FlowType]Curve
	sweeps map[apps.FlowType][]SweepSample
	mixes  map[string][]hw.FlowStats
}

// SweepSample is one full measurement of a sweep run: the aggregate
// competition and the target's complete window statistics, from which
// both the drop curve and hit-to-miss conversion rates (Figure 7) are
// derived.
type SweepSample struct {
	CompetingRefsPerSec float64
	Target              hw.FlowStats
}

// NewPredictor builds a predictor with the paper's sweep setup.
func NewPredictor(cfg hw.Config, params apps.Params, warmup, window float64) *Predictor {
	return &Predictor{
		Cfg:         cfg,
		Params:      params,
		Warmup:      warmup,
		Window:      window,
		SweepGrid:   DefaultSweepGrid,
		Competitors: cfg.CoresPerSocket - 1,
		solo:        make(map[apps.FlowType]hw.FlowStats),
		curves:      make(map[apps.FlowType]Curve),
		sweeps:      make(map[apps.FlowType][]SweepSample),
		mixes:       make(map[string][]hw.FlowStats),
	}
}

// Solo returns the memoised solo-run statistics of flow type t — the
// offline profile from which both the flow's aggressiveness (refs/sec)
// and its baseline throughput are read.
func (p *Predictor) Solo(t apps.FlowType) (hw.FlowStats, error) {
	if s, ok := p.solo[t]; ok {
		return s, nil
	}
	sc := Scenario{
		Cfg:    p.Cfg,
		Params: p.Params,
		Flows:  []FlowSpec{{Type: t, Core: 0, Domain: 0, Seed: SeedFor(t, 0)}},
		Warmup: p.Warmup,
		Window: p.Window,
	}
	res, err := sc.Run()
	if err != nil {
		return hw.FlowStats{}, err
	}
	p.solo[t] = res.Stats[0]
	return res.Stats[0], nil
}

// Sweep returns the memoised sweep samples of flow type t: the target's
// full statistics when co-running with SYN competitors at each grid rate
// (step 2 of the method), sorted by competition.
func (p *Predictor) Sweep(t apps.FlowType) ([]SweepSample, error) {
	if s, ok := p.sweeps[t]; ok {
		return s, nil
	}
	var samples []SweepSample
	for _, k := range p.SweepGrid {
		flows := []FlowSpec{{Type: t, Core: 0, Domain: 0, Seed: SeedFor(t, 0)}}
		for i := 1; i <= p.Competitors; i++ {
			flows = append(flows, FlowSpec{
				Type: apps.SYN, Core: i, Domain: 0,
				Seed: SeedFor(apps.SYN, i), SynCompute: k,
			})
		}
		res, err := Scenario{Cfg: p.Cfg, Params: p.Params, Flows: flows,
			Warmup: p.Warmup, Window: p.Window}.Run()
		if err != nil {
			return nil, err
		}
		var competing float64
		for i := 1; i <= p.Competitors; i++ {
			competing += res.Stats[i].L3RefsPerSec()
		}
		samples = append(samples, SweepSample{
			CompetingRefsPerSec: competing,
			Target:              res.Stats[0],
		})
	}
	sort.Slice(samples, func(i, j int) bool {
		return samples[i].CompetingRefsPerSec < samples[j].CompetingRefsPerSec
	})
	p.sweeps[t] = samples
	return samples, nil
}

// Curve returns the memoised drop-versus-competition curve of flow type
// t, derived from the sweep samples.
func (p *Predictor) Curve(t apps.FlowType) (Curve, error) {
	if c, ok := p.curves[t]; ok {
		return c, nil
	}
	solo, err := p.Solo(t)
	if err != nil {
		return Curve{}, err
	}
	samples, err := p.Sweep(t)
	if err != nil {
		return Curve{}, err
	}
	curve := Curve{Target: t, Points: []CurvePoint{{0, 0}}}
	for _, s := range samples {
		curve.Points = append(curve.Points, CurvePoint{
			CompetingRefsPerSec: s.CompetingRefsPerSec,
			Drop:                hw.PerformanceDrop(solo, s.Target),
		})
	}
	p.curves[t] = curve
	return curve, nil
}

// Prediction is the predicted contention-induced drop for one flow.
type Prediction struct {
	Target              apps.FlowType
	CompetingRefsPerSec float64 // assumed competition (sum of solo rates)
	Drop                float64
}

// Predict runs the paper's step 3: sum the competitors' solo refs/sec and
// read the target's curve at that level.
func (p *Predictor) Predict(target apps.FlowType, competitors []apps.FlowType) (Prediction, error) {
	var sum float64
	for _, c := range competitors {
		s, err := p.Solo(c)
		if err != nil {
			return Prediction{}, err
		}
		sum += s.L3RefsPerSec()
	}
	curve, err := p.Curve(target)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{Target: target, CompetingRefsPerSec: sum, Drop: curve.DropAt(sum)}, nil
}

// PredictAt reads the target's curve at a known competition level — the
// paper's "prediction assuming perfect knowledge of the competition"
// (Figure 8(b)), where the competitors' actual co-run refs/sec replace
// the solo-run estimate.
func (p *Predictor) PredictAt(target apps.FlowType, competingRefsPerSec float64) (Prediction, error) {
	curve, err := p.Curve(target)
	if err != nil {
		return Prediction{}, err
	}
	return Prediction{
		Target:              target,
		CompetingRefsPerSec: competingRefsPerSec,
		Drop:                curve.DropAt(competingRefsPerSec),
	}, nil
}

// mixKey canonicalises a multiset of flow types.
func mixKey(mix []apps.FlowType) string {
	s := make([]string, len(mix))
	for i, t := range mix {
		s[i] = string(t)
	}
	sort.Strings(s)
	return strings.Join(s, ",")
}

// MeasureMix co-runs the given flows on one socket (cores 0..n-1, data
// local) and returns their window statistics, memoised by multiset. The
// slice is ordered by the sorted multiset, not the input order.
func (p *Predictor) MeasureMix(mix []apps.FlowType) ([]hw.FlowStats, []apps.FlowType, error) {
	if len(mix) == 0 || len(mix) > p.Cfg.CoresPerSocket {
		return nil, nil, fmt.Errorf("core: mix of %d flows does not fit a %d-core socket",
			len(mix), p.Cfg.CoresPerSocket)
	}
	sorted := append([]apps.FlowType(nil), mix...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	key := mixKey(sorted)
	if st, ok := p.mixes[key]; ok {
		return st, sorted, nil
	}
	flows := make([]FlowSpec, len(sorted))
	for i, t := range sorted {
		flows[i] = FlowSpec{Type: t, Core: i, Domain: 0, Seed: SeedFor(t, i)}
	}
	res, err := Scenario{Cfg: p.Cfg, Params: p.Params, Flows: flows,
		Warmup: p.Warmup, Window: p.Window}.Run()
	if err != nil {
		return nil, nil, err
	}
	p.mixes[key] = res.Stats
	return res.Stats, sorted, nil
}

// MeasuredDrops returns each flow's measured contention-induced drop in
// the given mix, ordered like MeasureMix's sorted result.
func (p *Predictor) MeasuredDrops(mix []apps.FlowType) ([]float64, []apps.FlowType, error) {
	stats, sorted, err := p.MeasureMix(mix)
	if err != nil {
		return nil, nil, err
	}
	drops := make([]float64, len(sorted))
	for i, t := range sorted {
		solo, err := p.Solo(t)
		if err != nil {
			return nil, nil, err
		}
		drops[i] = hw.PerformanceDrop(solo, stats[i])
	}
	return drops, sorted, nil
}

// PredictMix predicts every flow's drop in a mix from solo profiles only.
// Results are ordered like MeasureMix's sorted order so measured and
// predicted values align index-wise.
func (p *Predictor) PredictMix(mix []apps.FlowType) ([]Prediction, []apps.FlowType, error) {
	sorted := append([]apps.FlowType(nil), mix...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	preds := make([]Prediction, len(sorted))
	for i, t := range sorted {
		competitors := make([]apps.FlowType, 0, len(sorted)-1)
		competitors = append(competitors, sorted[:i]...)
		competitors = append(competitors, sorted[i+1:]...)
		pr, err := p.Predict(t, competitors)
		if err != nil {
			return nil, nil, err
		}
		preds[i] = pr
	}
	return preds, sorted, nil
}
