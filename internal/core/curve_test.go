package core

import (
	"math"
	"testing"

	"pktpredict/internal/apps"
)

// TestCurveDropAt pins the interpolation's edge behaviour: empty curves,
// non-positive competition, exact point hits, duplicate abscissae, and the
// flat hold beyond the last measured point (the paper's "turning point"
// observation).
func TestCurveDropAt(t *testing.T) {
	ramp := Curve{Target: apps.MON, Points: []CurvePoint{
		{0, 0}, {100e6, 0.10}, {200e6, 0.30}, {400e6, 0.34},
	}}
	dup := Curve{Target: apps.FW, Points: []CurvePoint{
		{0, 0}, {50e6, 0.05}, {50e6, 0.15}, {100e6, 0.20},
	}}
	cases := []struct {
		name string
		c    Curve
		refs float64
		want float64
	}{
		{"empty curve", Curve{}, 123e6, 0},
		{"empty points slice", Curve{Points: []CurvePoint{}}, 1, 0},
		{"zero competition", ramp, 0, 0},
		{"negative competition", ramp, -5e6, 0},
		{"exact interior point", ramp, 200e6, 0.30},
		{"exact first point", ramp, 1e-9, 0.10 * (1e-9) / 100e6},
		{"midpoint interpolation", ramp, 150e6, 0.20},
		{"quarter interpolation", ramp, 125e6, 0.15},
		{"exact last point", ramp, 400e6, 0.34},
		{"beyond last point holds flat", ramp, 900e6, 0.34},
		{"far beyond last point", ramp, math.Inf(1), 0.34},
		{"duplicate abscissa takes first value", dup, 50e6, 0.05},
		{"between duplicate and next", dup, 75e6, 0.175},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.c.DropAt(tc.refs)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("DropAt(%g) = %g, want %g", tc.refs, got, tc.want)
			}
		})
	}
}

// TestCurveDropAtMonotone checks that a monotone curve interpolates
// monotonically: predictions never decrease as competition grows.
func TestCurveDropAtMonotone(t *testing.T) {
	c := Curve{Points: []CurvePoint{{0, 0}, {10e6, 0.02}, {80e6, 0.25}, {300e6, 0.31}}}
	prev := -1.0
	for refs := 0.0; refs <= 400e6; refs += 1e6 {
		d := c.DropAt(refs)
		if d < prev {
			t.Fatalf("DropAt not monotone: DropAt(%g)=%g < %g", refs, d, prev)
		}
		if d < 0 || d > 0.31 {
			t.Fatalf("DropAt(%g)=%g outside [0, 0.31]", refs, d)
		}
		prev = d
	}
}
