package core

import (
	"fmt"

	"pktpredict/internal/elements"
	"pktpredict/internal/hw"
)

// Throttling (Section 4, "containing hidden aggressiveness"): an
// administrator monitors each flow's memory-access rate with hardware
// counters and, when a flow exceeds the rate it exhibited during offline
// profiling, configures its control element to slow it down. The result
// is that no flow can perform more cache references per second than it
// was profiled at, so the offline-profiling-based prediction remains
// valid even against flows that change behaviour at run time.

// ThrottleSample records one monitoring interval of the containment loop.
type ThrottleSample struct {
	Interval    int
	RefsPerSec  float64
	DelayCycles uint32
	Throttled   bool
}

// RateController is the pure control law of the containment loop,
// decoupled from any engine so both the offline Containment loop and the
// concurrent runtime's admission control can drive it: proportional
// adjustment of a control element's per-packet delay so a flow's observed
// memory-reference rate converges to its profiled limit.
type RateController struct {
	// Limit is the profiled L3 refs/sec the flow may not exceed.
	Limit float64
	// Slack tolerates measurement noise above the limit (e.g. 0.05).
	Slack float64
}

// Step computes the next control-element delay from one interval's
// telemetry: the flow's observed refs/sec and mean cycles per packet, and
// the delay currently configured. throttled reports whether the flow was
// over its limit (the delay was increased).
//
// To move the reference rate from r to the limit, per-packet time must
// scale by r/limit, i.e. the delay must change by
// cyclesPerPacket·(r/limit − 1). Under the limit, the equivalent slack is
// handed back so a flow hovering near its limit oscillates tightly around
// it and a reformed flow regains its throughput.
func (rc RateController) Step(refsPerSec, cyclesPerPacket float64, delay uint32) (next uint32, throttled bool) {
	if rc.Limit <= 0 || cyclesPerPacket <= 0 {
		return delay, false
	}
	switch {
	case refsPerSec > rc.Limit*(1+rc.Slack):
		needed := cyclesPerPacket * (refsPerSec/rc.Limit - 1)
		return delay + uint32(needed) + 1, true
	case refsPerSec < rc.Limit && delay > 0:
		give := cyclesPerPacket * (1 - refsPerSec/rc.Limit)
		if give >= float64(delay) {
			return 0, false
		}
		return delay - uint32(give) - 1, false
	}
	return delay, false
}

// Containment drives the monitor-and-throttle loop for one flow.
type Containment struct {
	// Limit is the profiled L3 refs/sec the flow may not exceed.
	Limit float64
	// Slack tolerates measurement noise above the limit (default 5%).
	Slack float64
	// Control is the flow's control element.
	Control *elements.Control

	engine *hw.Engine
	flow   int // index into engine.Flows
}

// NewContainment monitors flow index flowIdx of e, clamping it to
// limitRefsPerSec via ctl.
func NewContainment(e *hw.Engine, flowIdx int, ctl *elements.Control, limitRefsPerSec float64) (*Containment, error) {
	if flowIdx < 0 || flowIdx >= len(e.Flows) {
		return nil, fmt.Errorf("core: flow index %d out of range", flowIdx)
	}
	if ctl == nil {
		return nil, fmt.Errorf("core: containment requires a control element")
	}
	if limitRefsPerSec <= 0 {
		return nil, fmt.Errorf("core: containment limit must be positive")
	}
	return &Containment{
		Limit:   limitRefsPerSec,
		Slack:   0.05,
		Control: ctl,
		engine:  e,
		flow:    flowIdx,
	}, nil
}

// Run executes steps monitoring intervals of the given virtual length,
// adjusting the control element after each, and returns the samples. The
// controller is deliberately simple — multiplicative increase when over
// the limit, gentle decrease when well under — because the paper's point
// is that a trivial mechanism suffices once the memory-access rate is
// observable.
func (c *Containment) Run(interval float64, steps int) []ThrottleSample {
	samples := make([]ThrottleSample, 0, steps)
	for step := 0; step < steps; step++ {
		before := c.engine.Flows[c.flow].Core.Counters
		startClock := c.engine.Flows[c.flow].Core.Clock()
		c.engine.RunSeconds(interval)
		delta := c.engine.Flows[c.flow].Core.Counters.Sub(before)
		elapsed := c.engine.Flows[c.flow].Core.Clock() - startClock
		seconds := float64(elapsed) / c.engine.Platform.Cfg.ClockHz
		refsPerSec := 0.0
		if seconds > 0 {
			refsPerSec = float64(delta.L3Refs) / seconds
		}

		cyclesPerPacket := 0.0
		if delta.Packets > 0 {
			cyclesPerPacket = float64(delta.Cycles) / float64(delta.Packets)
		}
		rc := RateController{Limit: c.Limit, Slack: c.Slack}
		next, throttled := rc.Step(refsPerSec, cyclesPerPacket, c.Control.Delay())
		c.Control.SetDelay(next)
		samples = append(samples, ThrottleSample{
			Interval:    step,
			RefsPerSec:  refsPerSec,
			DelayCycles: c.Control.Delay(),
			Throttled:   throttled,
		})
	}
	return samples
}
