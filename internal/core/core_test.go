package core

import (
	"math"
	"testing"
	"testing/quick"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
)

// testCfg scales the platform down so unit tests run in milliseconds of
// wall time while keeping the cache-hierarchy structure.
func testCfg() hw.Config {
	cfg := hw.DefaultConfig()
	cfg.L1D = hw.CacheGeom{SizeBytes: 4 << 10, Ways: 4}
	cfg.L2 = hw.CacheGeom{SizeBytes: 32 << 10, Ways: 8}
	cfg.L3 = hw.CacheGeom{SizeBytes: 1 << 20, Ways: 16}
	return cfg
}

func testPredictor() *Predictor {
	p := NewPredictor(testCfg(), apps.Small(), 0.0005, 0.002)
	p.SweepGrid = []int{1600, 400, 100, 0}
	return p
}

func TestScenarioRunBasics(t *testing.T) {
	sc := Scenario{
		Cfg:    testCfg(),
		Params: apps.Small(),
		Flows: []FlowSpec{
			{Type: apps.MON, Core: 0, Domain: 0, Seed: 1},
			{Type: apps.FW, Core: 1, Domain: 0, Seed: 2},
		},
		Warmup: 0.0002,
		Window: 0.001,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("stats = %d flows", len(res.Stats))
	}
	for i, st := range res.Stats {
		if st.Raw.Packets == 0 {
			t.Fatalf("flow %d made no progress", i)
		}
	}
}

func TestScenarioEmptyFails(t *testing.T) {
	if _, err := (Scenario{Cfg: testCfg(), Params: apps.Small()}).Run(); err == nil {
		t.Fatal("empty scenario must fail")
	}
}

func TestScenarioDomainPlacement(t *testing.T) {
	// A flow with data in domain 1 running on socket 0 must produce
	// remote references.
	sc := Scenario{
		Cfg:    testCfg(),
		Params: apps.Small(),
		Flows:  []FlowSpec{{Type: apps.SYNMAX, Core: 0, Domain: 1, Seed: 3}},
		Warmup: 0.0001, Window: 0.0005,
	}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].Raw.RemoteRefs == 0 {
		t.Fatal("cross-domain flow produced no remote references")
	}
}

func TestSeedForStability(t *testing.T) {
	if SeedFor(apps.MON, 0) != SeedFor(apps.MON, 0) {
		t.Fatal("SeedFor not deterministic")
	}
	if SeedFor(apps.MON, 0) == SeedFor(apps.MON, 1) {
		t.Fatal("SeedFor must differ by index")
	}
	if SeedFor(apps.MON, 0) == SeedFor(apps.FW, 0) {
		t.Fatal("SeedFor must differ by type")
	}
}

func TestSoloMemoised(t *testing.T) {
	p := testPredictor()
	a, err := p.Solo(apps.IP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Solo(apps.IP)
	if err != nil {
		t.Fatal(err)
	}
	if a.Raw != b.Raw {
		t.Fatal("memoised solo differs")
	}
	if a.Throughput() == 0 || a.L3RefsPerSec() == 0 {
		t.Fatal("solo profile empty")
	}
}

func TestCurveShape(t *testing.T) {
	p := testPredictor()
	c, err := p.Curve(apps.MON)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != len(p.SweepGrid)+1 {
		t.Fatalf("curve has %d points, want %d", len(c.Points), len(p.SweepGrid)+1)
	}
	if c.Points[0].CompetingRefsPerSec != 0 || c.Points[0].Drop != 0 {
		t.Fatal("curve must start at (0,0)")
	}
	// Competition levels must increase along the grid, and drop at the
	// hardest point must exceed drop at the lightest by a clear margin.
	last := c.Points[len(c.Points)-1]
	first := c.Points[1]
	if last.CompetingRefsPerSec <= first.CompetingRefsPerSec {
		t.Fatal("sweep did not ramp competition")
	}
	if last.Drop <= first.Drop {
		t.Fatalf("drop did not grow with competition: %.3f → %.3f", first.Drop, last.Drop)
	}
	if last.Drop <= 0.03 {
		t.Fatalf("max drop %.3f implausibly small; contention not manifesting", last.Drop)
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := Curve{Points: []CurvePoint{{0, 0}, {100, 0.10}, {200, 0.20}}}
	cases := []struct{ x, want float64 }{
		{-5, 0}, {0, 0}, {50, 0.05}, {100, 0.10}, {150, 0.15}, {200, 0.20}, {500, 0.20},
	}
	for _, cse := range cases {
		if got := c.DropAt(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Fatalf("DropAt(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if (Curve{}).DropAt(100) != 0 {
		t.Fatal("empty curve must predict 0")
	}
}

// Property: curve interpolation is monotone for monotone curves and
// always within [min, max] of the defining points.
func TestCurveInterpolationQuick(t *testing.T) {
	c := Curve{Points: []CurvePoint{{0, 0}, {50, 0.08}, {120, 0.18}, {300, 0.25}}}
	f := func(xRaw uint16) bool {
		x := float64(xRaw)
		d := c.DropAt(x)
		if d < 0 || d > 0.25 {
			return false
		}
		return c.DropAt(x+10) >= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictMatchesMeasuredAtTestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("co-run measurement sweep")
	}
	p := testPredictor()
	target := apps.MON
	competitors := []apps.FlowType{apps.MON, apps.MON, apps.MON, apps.MON, apps.MON}

	pred, err := p.Predict(target, competitors)
	if err != nil {
		t.Fatal(err)
	}
	mix := append([]apps.FlowType{target}, competitors...)
	drops, _, err := p.MeasuredDrops(mix)
	if err != nil {
		t.Fatal(err)
	}
	measured := drops[0] // all MON: any slot works
	if diff := math.Abs(pred.Drop - measured); diff > 0.10 {
		t.Fatalf("prediction error %.1f%% (predicted %.1f%%, measured %.1f%%)",
			diff*100, pred.Drop*100, measured*100)
	}
}

func TestPredictionOrdersSensitivity(t *testing.T) {
	// MON must be predicted more sensitive than FW under the same heavy
	// competition — the paper's central sensitivity ordering.
	p := testPredictor()
	heavy := []apps.FlowType{apps.SYNMAX, apps.SYNMAX, apps.SYNMAX, apps.SYNMAX, apps.SYNMAX}
	pm, err := p.Predict(apps.MON, heavy)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := p.Predict(apps.FW, heavy)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Drop <= pf.Drop {
		t.Fatalf("MON predicted drop (%.3f) must exceed FW's (%.3f)", pm.Drop, pf.Drop)
	}
}

func TestMeasureMixMemoisedAndOrderInvariant(t *testing.T) {
	p := testPredictor()
	a, sortedA, err := p.MeasureMix([]apps.FlowType{apps.FW, apps.MON})
	if err != nil {
		t.Fatal(err)
	}
	b, sortedB, err := p.MeasureMix([]apps.FlowType{apps.MON, apps.FW})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 || sortedA[0] != sortedB[0] {
		t.Fatal("mix results not canonicalised")
	}
	if a[0].Raw != b[0].Raw {
		t.Fatal("memoisation failed for permuted mix")
	}
}

func TestMeasureMixValidation(t *testing.T) {
	p := testPredictor()
	if _, _, err := p.MeasureMix(nil); err == nil {
		t.Fatal("empty mix must fail")
	}
	big := make([]apps.FlowType, 7)
	for i := range big {
		big[i] = apps.IP
	}
	if _, _, err := p.MeasureMix(big); err == nil {
		t.Fatal("7 flows must not fit a 6-core socket")
	}
}

// --- model ---

func TestEquation1(t *testing.T) {
	// With δ·κ·h = 1, drop = 1/2.
	if got := DropFromConversion(1e6, 1, 1e-6); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("drop = %v, want 0.5", got)
	}
	if DropFromConversion(0, 1, 1e-6) != 0 {
		t.Fatal("zero hits → zero drop")
	}
	// Paper's example: at 20M hits/sec and δ=43.75ns, worst-case drop is
	// ≈ 47%.
	got := WorstCaseDrop(20e6, DeltaSeconds)
	if got < 0.45 || got > 0.48 {
		t.Fatalf("WorstCaseDrop(20M) = %.3f, want ≈ 0.47", got)
	}
}

// Property: Equation 1 is monotone in every argument and bounded in [0,1).
func TestEquation1MonotoneQuick(t *testing.T) {
	f := func(h16, k16, d16 uint16) bool {
		h := float64(h16) * 1e3
		k := float64(k16) / 65535
		d := float64(d16) * 1e-9
		v := DropFromConversion(h, k, d)
		if v < 0 || v >= 1 {
			return false
		}
		return DropFromConversion(h*2, k, d) >= v &&
			DropFromConversion(h, k, d*2) >= v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheModelShape(t *testing.T) {
	m := CacheModel{
		CacheLines:       196608, // 12MB / 64B
		TargetHitsPerSec: 21e6,   // MON-like
		TargetChunks:     100000,
	}
	if m.ConversionRate(0) != 0 {
		t.Fatal("no competition → no conversion")
	}
	low := m.ConversionRate(10e6)
	mid := m.ConversionRate(50e6)
	high := m.ConversionRate(250e6)
	if !(low < mid && mid < high) {
		t.Fatalf("conversion not monotone: %v %v %v", low, mid, high)
	}
	if high > 1 {
		t.Fatalf("conversion rate %v exceeds 1", high)
	}
	// The paper's shape: sharp rise then slow-down. The marginal increase
	// from 0→50M must exceed that from 50M→100M... per unit.
	first := mid - low
	second := m.ConversionRate(90e6) - mid
	if second >= first {
		t.Fatalf("conversion curve is not concave: Δ1=%v Δ2=%v", first, second)
	}
	if d := m.EstimatedDrop(250e6, DeltaSeconds); d <= 0 || d >= 1 {
		t.Fatalf("estimated drop %v out of range", d)
	}
}

func TestCacheModelDegenerate(t *testing.T) {
	if (CacheModel{}).ConversionRate(1e6) != 0 {
		t.Fatal("degenerate model must return 0")
	}
}

// --- scheduling ---

func TestEnumerateSplits(t *testing.T) {
	flows := []apps.FlowType{apps.MON, apps.MON, apps.FW, apps.FW}
	splits := enumerateSplits(flows, 2)
	// take ∈ {0,1,2} MON for socket0 → 3 splits (with FW filling up).
	if len(splits) != 3 {
		t.Fatalf("splits = %d, want 3", len(splits))
	}
	for _, s := range splits {
		if len(s.s0) != 2 || len(s.s1) != 2 {
			t.Fatalf("uneven split %v | %v", s.s0, s.s1)
		}
	}
}

func TestEvaluatePlacements(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario sweep")
	}
	p := testPredictor()
	flows := make([]apps.FlowType, 0, 12)
	for i := 0; i < 6; i++ {
		flows = append(flows, apps.MON, apps.FW)
	}
	eval, err := EvaluatePlacements(p, flows)
	if err != nil {
		t.Fatal(err)
	}
	// 6 MON / 6 FW: socket0 MON count 0..6, symmetric → 4 distinct.
	if len(eval.All) != 4 {
		t.Fatalf("distinct placements = %d, want 4", len(eval.All))
	}
	if eval.Gain < 0 {
		t.Fatalf("gain %v negative", eval.Gain)
	}
	if eval.Best.AvgDrop > eval.Worst.AvgDrop {
		t.Fatal("best placement worse than worst")
	}
	if len(eval.Best.PerFlow) != 12 {
		t.Fatalf("per-flow drops = %d, want 12", len(eval.Best.PerFlow))
	}
}

func TestEvaluatePlacementsValidation(t *testing.T) {
	p := testPredictor()
	if _, err := EvaluatePlacements(p, []apps.FlowType{apps.MON}); err == nil {
		t.Fatal("wrong flow count must fail")
	}
}

func TestGreedyPlacementBalanced(t *testing.T) {
	p := testPredictor()
	flows := make([]apps.FlowType, 0, 12)
	for i := 0; i < 6; i++ {
		flows = append(flows, apps.MON, apps.FW)
	}
	s0, s1, err := GreedyPlacement(p, flows)
	if err != nil {
		t.Fatal(err)
	}
	if len(s0) != 6 || len(s1) != 6 {
		t.Fatalf("unbalanced: %d/%d", len(s0), len(s1))
	}
	// Snake dealing of 6 MON (aggressive) and 6 FW must mix both types
	// on each socket.
	count := func(ts []apps.FlowType, w apps.FlowType) int {
		n := 0
		for _, t := range ts {
			if t == w {
				n++
			}
		}
		return n
	}
	if count(s0, apps.MON) == 6 || count(s1, apps.MON) == 6 {
		t.Fatalf("greedy placement clustered all MON flows: %v | %v", s0, s1)
	}
}
