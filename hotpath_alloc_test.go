// The consolidated zero-allocation tier. Every function annotated
// //dataplane:hotpath (the set vetdp's hotpathalloc analyzer checks
// statically) is gated here dynamically with testing.AllocsPerRun:
//
//	go test -run TestHotPathAllocs
//
// is the one command that measures the whole hot-path surface. The
// static analyzer proves the absence of allocation *sites*; this tier
// proves the absence of allocation *behaviour* (escape analysis can
// defeat or rescue either one, so the two gates back each other up).
// TestHotPathAllocManifest parses the source tree so a newly annotated
// function cannot silently skip the gate.
package pktpredict_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"pktpredict/internal/click"
	"pktpredict/internal/dpi"
	"pktpredict/internal/handoff"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
	"pktpredict/internal/nic"
	"pktpredict/internal/obs"
	"pktpredict/internal/runtime"
	"pktpredict/internal/synth"
)

// allocSource feeds Pipeline.EmitPacket one reusable packet per pull.
type allocSource struct {
	pkt  click.Packet
	data [64]byte
}

func (s *allocSource) Class() string { return "AllocSource" }

func (s *allocSource) Pull(ctx *click.Ctx) *click.Packet {
	s.pkt.Data = s.data[:]
	ctx.Load(s.pkt.Addr)
	return &s.pkt
}

// allocElem is a minimal element: a compute burst, then continue.
type allocElem struct{}

func (allocElem) Class() string { return "AllocElem" }

func (allocElem) Process(ctx *click.Ctx, p *click.Packet) click.Verdict {
	ctx.Compute(10, 5)
	return click.Continue
}

// gate asserts fn performs zero allocations per run.
func gate(t *testing.T, name string, fn func()) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		if n := testing.AllocsPerRun(1000, fn); n != 0 {
			t.Errorf("%s allocates %v/op on the hot path", name, n)
		}
	})
}

// TestHotPathAllocs drives every externally drivable //dataplane:hotpath
// function and asserts it is allocation-free in steady state. Unexported
// helpers are covered through their exported entry points (see
// hotpathIndirect below for the full accounting).
func TestHotPathAllocs(t *testing.T) {
	// obs: metric updates on the worker hot path.
	reg := obs.NewRegistry()
	c := reg.Counter("a_total", "t", "w").With("0")
	g := reg.Gauge("b", "t", "w").With("0")
	h := reg.Histogram("c", "t", []float64{1, 8, 32}, "w").With("0")
	gate(t, "obs.Counter.Inc", func() { c.Inc() })
	gate(t, "obs.Counter.Add", func() { c.Add(3) })
	gate(t, "obs.Gauge.Set", func() { g.Set(1.5) })
	gate(t, "obs.Gauge.Add", func() { g.Add(0.5) })
	gate(t, "obs.Histogram.Observe", func() { h.Observe(7) })
	var lh obs.LatHist
	gate(t, "obs.LatHist.Observe", func() { lh.Observe(12345) })

	// runtime: the worker's SPSC byte ring, scalar and batched paths.
	ring := runtime.NewRing(64, 256)
	payload := make([]byte, 128)
	dst := make([]byte, 256)
	gate(t, "runtime.Ring.Push+Pop", func() {
		if !ring.Push(payload, 1) {
			t.Fatal("ring full")
		}
		if _, _, ok := ring.Pop(dst); !ok {
			t.Fatal("ring empty")
		}
	})
	gate(t, "runtime.Ring.Stage+Commit+PopStaged+Release", func() {
		if !ring.Stage(payload, 1) {
			t.Fatal("ring full")
		}
		ring.Commit()
		if _, _, ok := ring.PopStaged(dst); !ok {
			t.Fatal("ring empty")
		}
		ring.Release()
	})
	batchBufs := make([][]byte, 8)
	batchDsts := make([][]byte, 8)
	for i := range batchBufs {
		batchBufs[i] = make([]byte, 128)
		batchDsts[i] = make([]byte, 256)
	}
	batchLens := make([]int, 8)
	batchStamps := make([]uint64, 8)
	gate(t, "runtime.Ring.PushBatch+PopBatch", func() {
		if ring.PushBatch(batchBufs, 1) != len(batchBufs) {
			t.Fatal("ring full")
		}
		if ring.PopBatch(batchDsts, batchLens, batchStamps) != len(batchDsts) {
			t.Fatal("ring empty")
		}
	})

	// hw: trace replay with per-element accounting installed (execTrace).
	plat := hw.NewPlatform(hw.DefaultConfig())
	core := plat.Cores[0]
	core.SetElemTable(make([]hw.ElemCell, 8))
	base := hw.DomainBase(0)
	ops := []hw.Op{
		{Kind: hw.OpCompute, Cycles: 40, Instrs: 20, Elem: 1},
		{Kind: hw.OpLoad, Addr: base + 0x40, Elem: 2},
		{Kind: hw.OpStore, Addr: base + 0x80, Elem: 3},
		{Kind: hw.OpLoadStream, Addr: base + 0x4000, Elem: 4},
	}
	gate(t, "hw.Core.ExecOps", func() { core.ExecOps(ops) })
	gate(t, "hw.Core.ExecStall", func() { core.ExecStall(ops) })

	// click: the Ctx emit surface, with a preallocated trace buffer.
	ctx := &click.Ctx{Ops: make([]hw.Op, 0, 4096)}
	gate(t, "click.Ctx.Load", func() { ctx.Ops = ctx.Ops[:0]; ctx.Load(base) })
	gate(t, "click.Ctx.Store", func() { ctx.Ops = ctx.Ops[:0]; ctx.Store(base) })
	gate(t, "click.Ctx.LoadBytes", func() { ctx.Ops = ctx.Ops[:0]; ctx.LoadBytes(base, 256) })
	gate(t, "click.Ctx.StoreBytes", func() { ctx.Ops = ctx.Ops[:0]; ctx.StoreBytes(base, 256) })
	gate(t, "click.Ctx.DMABytes", func() { ctx.Ops = ctx.Ops[:0]; ctx.DMABytes(base, 256) })
	gate(t, "click.Ctx.Compute", func() { ctx.Ops = ctx.Ops[:0]; ctx.Compute(10, 5) })

	// click: a full pipeline walk (EmitPacket → walk → walkNodes).
	src := &allocSource{}
	src.pkt.Addr = base + 4096
	pl := click.NewPipeline("alloc", src, allocElem{}, allocElem{})
	plBuf := make([]hw.Op, 0, 4096)
	gate(t, "click.Pipeline.EmitPacket", func() { plBuf = pl.EmitPacket(plBuf[:0]) })

	// nic: buffer pool and descriptor rings.
	arena := mem.NewArena(0)
	pool := nic.NewBufferPool(arena, 32, 2048)
	gate(t, "nic.BufferPool.Get+Put", func() {
		ctx.Ops = ctx.Ops[:0]
		idx, _, _ := pool.Get(ctx)
		pool.Put(ctx, idx)
	})
	rx := nic.NewRing(arena, 64)
	gate(t, "nic.Ring.Consume", func() { ctx.Ops = ctx.Ops[:0]; rx.Consume(ctx) })
	gate(t, "nic.Ring.Produce", func() { ctx.Ops = ctx.Ops[:0]; rx.Produce(ctx) })

	// handoff: the inter-stage SPSC ring (poll via PollFull/PollEmpty).
	ho := handoff.New(arena, 64)
	var hp click.Packet
	hp.Addr = base + 8192
	gate(t, "handoff.Ring.Push+Pop", func() {
		ctx.Ops = ctx.Ops[:0]
		if !ho.Push(ctx, &hp, 1, false) {
			t.Fatal("handoff ring full")
		}
		if _, _, _, ok := ho.Pop(ctx); !ok {
			t.Fatal("handoff ring empty")
		}
	})
	gate(t, "handoff.Ring.StagePush+CommitPush+PopStaged+CommitPop", func() {
		ctx.Ops = ctx.Ops[:0]
		if !ho.StagePush(ctx, &hp, 1, false) {
			t.Fatal("handoff ring full")
		}
		ho.CommitPush(ctx)
		if _, _, _, ok := ho.PopStaged(ctx); !ok {
			t.Fatal("handoff ring empty")
		}
		ho.CommitPop(ctx)
	})
	gate(t, "handoff.Ring.PollFull", func() { ctx.Ops = ctx.Ops[:0]; ho.PollFull(ctx) })
	gate(t, "handoff.Ring.PollEmpty", func() { ctx.Ops = ctx.Ops[:0]; ho.PollEmpty(ctx) })
	gate(t, "handoff.Ring.ChargeHeaderMiss", func() { ctx.Ops = ctx.Ops[:0]; ho.ChargeHeaderMiss(ctx, &hp) })

	// synth: the SYN workload's op source.
	syn := synth.NewSource(arena, synth.Config{RegionBytes: 1 << 16})
	synBuf := make([]hw.Op, 0, 4096)
	gate(t, "synth.Source.EmitPacket", func() { synBuf = syn.EmitPacket(synBuf[:0]) })

	// dpi: the IDS engines — signature scan, entropy estimate, ban check.
	sigTab, err := dpi.NewSigTable(arena, dpi.Signatures(11, 16))
	if err != nil {
		t.Fatal(err)
	}
	scanBuf := make([]byte, 484)
	for i := range scanBuf {
		scanBuf[i] = byte(i * 31)
	}
	gate(t, "dpi.SigTable.Match", func() { sigTab.Match(scanBuf) })
	var ent dpi.Entropy
	gate(t, "dpi.Entropy.EstimateBits", func() { ent.EstimateBits(scanBuf, dpi.EntropyWindow) })
	ban, err := dpi.NewBanTable(arena, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var banIP uint32
	gate(t, "dpi.BanTable.Check", func() {
		ctx.Ops = ctx.Ops[:0]
		banIP++
		ban.Check(ctx, banIP)
	})
}

// hotpathDirect lists the //dataplane:hotpath functions TestHotPathAllocs
// drives directly, keyed pkg.Recv.Method (or pkg.Func).
var hotpathDirect = map[string]bool{
	"obs.Counter.Inc":               true,
	"obs.Counter.Add":               true,
	"obs.Gauge.Set":                 true,
	"obs.Gauge.Add":                 true,
	"obs.Histogram.Observe":         true,
	"obs.LatHist.Observe":           true,
	"runtime.Ring.Push":             true,
	"runtime.Ring.Pop":              true,
	"runtime.Ring.Stage":            true,
	"runtime.Ring.Commit":           true,
	"runtime.Ring.PushBatch":        true,
	"runtime.Ring.PopStaged":        true,
	"runtime.Ring.Release":          true,
	"runtime.Ring.PopBatch":         true,
	"hw.Core.ExecOps":               true,
	"hw.Core.ExecStall":             true,
	"click.Ctx.Load":                true,
	"click.Ctx.Store":               true,
	"click.Ctx.LoadBytes":           true,
	"click.Ctx.StoreBytes":          true,
	"click.Ctx.DMABytes":            true,
	"click.Ctx.Compute":             true,
	"click.Pipeline.EmitPacket":     true,
	"nic.BufferPool.Get":            true,
	"nic.BufferPool.Put":            true,
	"nic.Ring.Consume":              true,
	"nic.Ring.Produce":              true,
	"handoff.Ring.Push":             true,
	"handoff.Ring.Pop":              true,
	"handoff.Ring.StagePush":        true,
	"handoff.Ring.CommitPush":       true,
	"handoff.Ring.PopStaged":        true,
	"handoff.Ring.CommitPop":        true,
	"handoff.Ring.PollFull":         true,
	"handoff.Ring.PollEmpty":        true,
	"handoff.Ring.ChargeHeaderMiss": true,
	"synth.Source.EmitPacket":       true,
	"dpi.SigTable.Match":            true,
	"dpi.Entropy.EstimateBits":      true,
	"dpi.BanTable.Check":            true,
}

// hotpathIndirect lists annotated functions that cannot be driven from
// an external test, each with the exported entry point that covers it.
var hotpathIndirect = map[string]string{
	"hw.Core.execTrace":           "unexported; every ExecOps/ExecStall call above runs it",
	"click.Pipeline.walk":         "unexported; Pipeline.EmitPacket above walks the graph",
	"click.walkNodes":             "unexported; Pipeline.EmitPacket above walks the graph",
	"handoff.Ring.poll":           "unexported; PollFull/PollEmpty above are thin wrappers",
	"runtime.ringSource.Pull":     "unexported type; the worker integration tests in internal/runtime drive the full Pull/Recycle cycle",
	"runtime.ringSource.Recycle":  "unexported type; the worker integration tests in internal/runtime drive the full Pull/Recycle cycle",
	"runtime.ringSource.endBatch": "unexported type; Ring.Release above is the whole body, and the worker integration tests drive it each quantum",
}

// TestHotPathAllocManifest parses internal/ for //dataplane:hotpath
// annotations and fails if any annotated function is neither directly
// gated above nor accounted for in hotpathIndirect — so annotating a
// function automatically demands an alloc gate for it. It also fails on
// stale entries, keeping the manifest in lockstep with the annotations.
func TestHotPathAllocManifest(t *testing.T) {
	annotated := map[string]token.Position{}
	fset := token.NewFileSet()
	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, cm := range fd.Doc.List {
				if cm.Text != "//dataplane:hotpath" && !strings.HasPrefix(cm.Text, "//dataplane:hotpath ") {
					continue
				}
				key := f.Name.Name + "."
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					rt := fd.Recv.List[0].Type
					if star, ok := rt.(*ast.StarExpr); ok {
						rt = star.X
					}
					if id, ok := rt.(*ast.Ident); ok {
						key += id.Name + "."
					}
				}
				key += fd.Name.Name
				annotated[key] = fset.Position(fd.Pos())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(annotated) == 0 {
		t.Fatal("found no //dataplane:hotpath annotations under internal/; the walker is broken")
	}
	for key, pos := range annotated {
		if !hotpathDirect[key] && hotpathIndirect[key] == "" {
			t.Errorf("%s: %s is annotated //dataplane:hotpath but has no alloc gate: add it to TestHotPathAllocs (or to hotpathIndirect with the entry point that covers it)", pos, key)
		}
	}
	for key := range hotpathDirect {
		if _, ok := annotated[key]; !ok {
			t.Errorf("hotpathDirect lists %s, which carries no //dataplane:hotpath annotation; prune it", key)
		}
	}
	for key := range hotpathIndirect {
		if _, ok := annotated[key]; !ok {
			t.Errorf("hotpathIndirect lists %s, which carries no //dataplane:hotpath annotation; prune it", key)
		}
	}
}
