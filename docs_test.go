// Documentation conformance tests: every internal package must carry a
// godoc package comment stating what it models (the CI vet/test steps
// keep this enforced), and the README must link the reference docs.
package pktpredict_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInternalPackagesHaveDocComments walks internal/* and fails on any
// package whose files all lack a package comment — the godoc contract
// that every subsystem explains what it models and which part of the
// paper it reproduces (docs/ARCHITECTURE.md is the map; the package
// comments are the territory).
func TestInternalPackagesHaveDocComments(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("internal", e.Name())
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			var doc string
			for _, f := range pkg.Files {
				if f.Doc != nil {
					doc += f.Doc.Text()
				}
			}
			if strings.TrimSpace(doc) == "" {
				t.Errorf("package %s (%s) has no package comment; document what it models and which paper section it reproduces", name, dir)
				continue
			}
			if len(strings.TrimSpace(doc)) < 80 {
				t.Errorf("package %s (%s): package comment %q is too thin to explain what the package models", name, dir, doc)
			}
		}
	}
}

// TestREADMELinksDocs pins the documentation entry points: the README
// must point readers at the architecture overview and the scenario
// grammar reference, and both files must exist.
func TestREADMELinksDocs(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"docs/ARCHITECTURE.md", "docs/scenario-format.md", "docs/observability.md", "docs/static-analysis.md"} {
		if _, err := os.Stat(doc); err != nil {
			t.Errorf("%s missing: %v", doc, err)
		}
		if !strings.Contains(string(readme), doc) {
			t.Errorf("README does not link %s", doc)
		}
	}
}
