// Benchmarks that regenerate every table and figure of the paper's
// evaluation, plus ablations over the hardware model's design choices.
// Each benchmark prints the reproduced rows/series through b.Log and
// reports its headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. Figure benchmarks share one predictor:
// its memoised solo profiles, sweeps, and co-run measurements mirror how
// an operator reuses offline profiles, and keep the suite's runtime
// bounded.
package pktpredict_test

import (
	"fmt"
	"sync"
	"testing"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/exp"
	"pktpredict/internal/hw"
	"pktpredict/internal/runtime"
)

// benchScale is the paper-scale platform with benchmark-friendly
// measurement windows: long enough for steady state, short enough that
// the full suite completes in minutes.
func benchScale() exp.Scale {
	s := exp.Full()
	s.Warmup = 0.003
	s.Window = 0.008
	s.SweepGrid = []int{1600, 800, 400, 100, 25, 0}
	return s
}

var (
	benchOnce sync.Once
	benchScl  exp.Scale
	benchPred *core.Predictor
	benchFig2 *exp.Fig2Result
)

func benchSetup(b *testing.B) (exp.Scale, *core.Predictor) {
	b.Helper()
	benchOnce.Do(func() {
		benchScl = benchScale()
		benchPred = benchScl.NewPredictor()
	})
	return benchScl, benchPred
}

func BenchmarkTable1(b *testing.B) {
	s, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable1(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	s, p := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig2(s, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			benchFig2 = res
			b.Log("\n" + res.String())
			max := res.MaxDrop()
			b.ReportMetric(max.Drop*100, "max_drop_%")
			b.ReportMetric(res.Average[apps.MON]*100, "mon_avg_drop_%")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	s, p := benchSetup(b)
	// Two targets keep the 3-mode ramp suite bounded; run cmd/pktbench
	// -exp fig4 for all five types.
	targets := []apps.FlowType{apps.MON, apps.FW}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig4(s, p, targets)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			cache, _ := res.Get(apps.MON, exp.CacheOnly)
			mem, _ := res.Get(apps.MON, exp.MemCtrlOnly)
			b.ReportMetric(cache.MaxDrop()*100, "mon_cache_only_max_%")
			b.ReportMetric(mem.MaxDrop()*100, "mon_memctrl_only_max_%")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	s, p := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig5(s, p, benchFig2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.MaxDeviation()*100, "max_deviation_%")
			b.ReportMetric(res.MeanDeviation()*100, "mean_deviation_%")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	s, p := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig6(s, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	s, p := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig7(s, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			last := res.Points[len(res.Points)-1]
			b.ReportMetric(last.Measured*100, "max_conversion_%")
			b.ReportMetric(last.PerFunc["flow_statistics"]*100, "flow_statistics_conv_%")
			b.ReportMetric(last.PerFunc["skb_recycle"]*100, "skb_recycle_conv_%")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	s, p := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig8(s, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.MaxAbsError*100, "worst_error_%")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	s, p := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig9(s, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.MaxError*100, "worst_error_%")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	s, p := benchSetup(b)
	combos := []exp.Fig10Combo{}
	for _, c := range exp.DefaultCombos() {
		switch c.Label {
		case "6MON+6FW", "6MON+6RE", "6SYNMAX+6FW":
			combos = append(combos, c)
		}
	}
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig10(s, p, combos)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.MaxRealisticGain*100, "realistic_gain_%")
			b.ReportMetric(res.MaxSyntheticGain*100, "synthetic_gain_%")
		}
	}
}

func BenchmarkThrottle(b *testing.B) {
	s, p := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunThrottle(s, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			b.ReportMetric(res.VictimProtection()*100, "victim_protection_%")
			b.ReportMetric(res.PeakUncontained()/1e6, "aggr_peak_Mrefs")
		}
	}
}

func BenchmarkPipelineVsParallel(b *testing.B) {
	s, _ := benchSetup(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunPipeline(s)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
			for _, row := range res.Rows {
				if row.Workload == "MON" {
					b.ReportMetric(row.ParallelPktsPerSec/row.PipelinePktsPerSec, "mon_parallel_speedup_x")
				}
			}
		}
	}
}

// BenchmarkRuntime scales the concurrent dataplane across worker counts
// so scaling regressions are visible: each sub-benchmark executes a
// saturating IP-forwarding mix on 1, 2, 4, and 8 workers (8 spans both
// sockets) for a fixed virtual window and reports aggregate packets per
// virtual second plus host-time cost per simulated packet.
func BenchmarkRuntime(b *testing.B) {
	s, _ := benchSetup(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var total uint64
			var virtSec float64
			for i := 0; i < b.N; i++ {
				cfg := runtime.Config{
					Cfg:      s.Cfg,
					Params:   s.Params,
					Apps:     []runtime.AppSpec{{Name: "ipfwd", Type: apps.IP, Workers: workers}},
					Warmup:   0.001,
					Scenario: fmt.Sprintf("bench-%d", workers),
				}
				r, err := runtime.NewRuntime(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := r.Run(0.004)
				if err != nil {
					b.Fatal(err)
				}
				total += rep.TotalProcessed()
				virtSec += rep.Duration
			}
			if virtSec > 0 {
				// total and virtSec both accumulate across iterations, so
				// their ratio is already the per-run aggregate rate.
				b.ReportMetric(float64(total)/virtSec/1e6, "Mpps_virtual")
			}
			if total > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "host_ns/pkt")
			}
		})
	}
}

// --- ablations: which hardware-model features carry the paper's
// observations? Each ablation re-measures the MON-vs-5-RE drop (the
// paper's headline contention case) with one model feature changed.

func ablationDrop(b *testing.B, mutate func(*hw.Config)) float64 {
	b.Helper()
	s := benchScale()
	mutate(&s.Cfg)
	p := s.NewPredictor()
	cell, err := exp.RunFig2Pair(s, p, apps.MON, apps.RE)
	if err != nil {
		b.Fatal(err)
	}
	return cell.Drop
}

func BenchmarkAblationBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := ablationDrop(b, func(*hw.Config) {})
		if i == 0 {
			b.ReportMetric(d*100, "mon_vs_re_drop_%")
		}
	}
}

func BenchmarkAblationRandomReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := ablationDrop(b, func(c *hw.Config) { c.L3Policy = hw.ReplaceRandom })
		if i == 0 {
			b.ReportMetric(d*100, "mon_vs_re_drop_%")
		}
	}
}

func BenchmarkAblationNonInclusiveL3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := ablationDrop(b, func(c *hw.Config) { c.InclusiveL3 = false })
		if i == 0 {
			b.ReportMetric(d*100, "mon_vs_re_drop_%")
		}
	}
}

func BenchmarkAblationDirectMappedL3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := ablationDrop(b, func(c *hw.Config) { c.L3.Ways = 1 })
		if i == 0 {
			b.ReportMetric(d*100, "mon_vs_re_drop_%")
		}
	}
}

func BenchmarkAblationNoMemCtrlQueueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := ablationDrop(b, func(c *hw.Config) { c.MemCtrlService = 1 })
		if i == 0 {
			b.ReportMetric(d*100, "mon_vs_re_drop_%")
		}
	}
}
