// Command profile runs one packet-processing flow solo on the simulated
// platform and prints its Table 1 row plus a per-function breakdown —
// the offline-profiling step of the paper's prediction method.
//
// Usage:
//
//	profile -flow MON [-scale full|quick] [-window 0.012] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/exp"
	"pktpredict/internal/perf"
)

func main() {
	flow := flag.String("flow", "MON", "flow type: IP, MON, FW, RE, VPN, SYN, SYN_MAX")
	scaleName := flag.String("scale", "full", "full or quick")
	window := flag.Float64("window", 0, "measurement window in virtual seconds (0 = scale default)")
	seed := flag.Uint64("seed", 0, "flow seed (0 = canonical)")
	flag.Parse()

	t, err := apps.ParseFlowType(*flow)
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(2)
	}
	var scale exp.Scale
	switch *scaleName {
	case "full":
		scale = exp.Full()
	case "quick":
		scale = exp.Quick()
	default:
		fmt.Fprintf(os.Stderr, "profile: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *window > 0 {
		scale.Window = *window
	}
	flowSeed := *seed
	if flowSeed == 0 {
		flowSeed = core.SeedFor(t, 0)
	}

	sc := core.Scenario{
		Cfg:    scale.Cfg,
		Params: scale.Params,
		Flows:  []core.FlowSpec{{Type: t, Core: 0, Domain: 0, Seed: flowSeed}},
		Warmup: scale.Warmup,
		Window: scale.Window,
	}
	res, err := sc.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
	p := perf.Profile{Label: string(t), Stats: res.Stats[0]}
	fmt.Println(perf.Table([]perf.Profile{p}))
	fmt.Printf("throughput: %.0f packets/sec\n\n", p.Throughput())

	fmt.Println("per-function breakdown:")
	fmt.Printf("%-20s %12s %12s %12s %12s\n", "function", "cycles", "L3 refs", "L3 hits", "L3 misses")
	for _, fs := range res.Stats[0].FuncBreakdown() {
		fmt.Printf("%-20s %12d %12d %12d %12d\n", fs.Name, fs.Cycles, fs.L3Refs, fs.L3Hits, fs.L3Misses)
	}
}
