// Command sched explores flow-to-core placements for a 12-flow
// combination, reproducing the paper's Section 5 analysis: it simulates
// every distinct placement, reports the best and worst, and scores the
// greedy contention-aware heuristic against them. The paper's conclusion
// — the gain is small — shows up as a tight best-to-worst range.
//
// Usage:
//
//	sched -flows 6xMON,6xFW [-scale full|quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/exp"
)

func main() {
	flowsArg := flag.String("flows", "6xMON,6xFW", "flow combination, e.g. 6xMON,6xFW or 4xMON,4xFW,4xRE")
	scaleName := flag.String("scale", "full", "full or quick")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "full":
		scale = exp.Full()
	case "quick":
		scale = exp.Quick()
	default:
		fmt.Fprintf(os.Stderr, "sched: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	flows, err := parseFlows(*flowsArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		os.Exit(2)
	}
	want := 2 * scale.Cfg.CoresPerSocket
	if len(flows) != want {
		fmt.Fprintf(os.Stderr, "sched: %d flows specified, platform has %d cores\n", len(flows), want)
		os.Exit(2)
	}

	p := scale.NewPredictor()
	eval, err := core.EvaluatePlacements(p, flows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		os.Exit(1)
	}

	fmt.Printf("combination: %v\n", flows)
	fmt.Printf("distinct placements: %d\n\n", len(eval.All))
	for _, pl := range eval.All {
		fmt.Printf("  %v\n", pl)
	}
	fmt.Printf("\nbest:  %v\nworst: %v\n", eval.Best, eval.Worst)
	fmt.Printf("contention-aware scheduling gain: %.1f%%\n", eval.Gain*100)

	s0, s1, err := core.GreedyPlacement(p, flows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		os.Exit(1)
	}
	greedy, err := core.EvaluateSplit(p, s0, s1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sched:", err)
		os.Exit(1)
	}
	fmt.Printf("greedy heuristic: {%v | %v} avg=%.1f%% (best %.1f%%, worst %.1f%%)\n",
		s0, s1, greedy*100, eval.Best.AvgDrop*100, eval.Worst.AvgDrop*100)
}

// parseFlows expands "6xMON,6xFW" style specs.
func parseFlows(s string) ([]apps.FlowType, error) {
	var out []apps.FlowType
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		count := 1
		name := part
		if i := strings.IndexByte(part, 'x'); i > 0 {
			if n, err := strconv.Atoi(part[:i]); err == nil {
				count = n
				name = part[i+1:]
			}
		}
		t, err := apps.ParseFlowType(name)
		if err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			out = append(out, t)
		}
	}
	return out, nil
}
