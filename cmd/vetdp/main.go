// Command vetdp machine-checks the dataplane's hot-path invariants: the
// accounting and concurrency disciplines the simulator's predictions
// depend on but the compiler cannot see. It bundles four analyzers —
// hotpathalloc, elemstamp, singlewriter, metriclint; see
// internal/analysis and docs/static-analysis.md.
//
// Two modes:
//
//	vetdp ./...                          # standalone, loads packages itself
//	go vet -vettool=$(which vetdp) ./... # unit checker driven by cmd/go
//
// The second is what CI runs: cmd/go hands vetdp one package at a time
// with export data and fact files for its dependencies, and caches
// clean results keyed on the tool's -V=full identity.
//
// Each analyzer can be disabled with -<name>=false. Exit status: 0
// clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pktpredict/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vetdp", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go protocol: -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flag schema as JSON and exit (cmd/go protocol)")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		// cmd/go requires "<name> version <id>" with a non-"devel" id; the
		// id keys the vet action cache, so derive it from the executable.
		fmt.Printf("vetdp version %s\n", buildID())
		return 0
	case *flagsFlag:
		return printFlagSchema()
	}

	var active []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.RunUnitchecker(active, rest[0], os.Stderr)
	}
	return runStandalone(active, rest)
}

func runStandalone(active []*analysis.Analyzer, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetdp: %v\n", err)
		return 1
	}
	findings, err := analysis.Run(active, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetdp: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// buildID hashes the running executable so the vet action cache is
// invalidated whenever the tool is rebuilt.
func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "v0-unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "v0-unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "v0-unknown"
	}
	return fmt.Sprintf("v0-%x", h.Sum(nil)[:12])
}

// printFlagSchema answers cmd/go's -flags probe, which it uses to
// validate the vet flags the user passed on the go vet command line.
func printFlagSchema() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analysis.All() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "run the " + a.Name + " analyzer"})
	}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetdp: %v\n", err)
		return 1
	}
	fmt.Println(string(data))
	return 0
}
