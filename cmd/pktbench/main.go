// Command pktbench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports, as text or
// CSV.
//
// Usage:
//
//	pktbench -exp table1|fig2|fig4|fig5|fig6|fig7|fig8|fig9|fig10|throttle|pipeline|all
//	         [-scale full|quick] [-csv] [-targets MON,IP]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/exp"
)

// result is the common surface of all experiment results.
type result interface {
	String() string
	CSV() string
}

func main() {
	expName := flag.String("exp", "all", "experiment id (table1, fig2, fig4, fig5, fig6, fig7, fig8, fig9, fig10, throttle, pipeline, all)")
	scaleName := flag.String("scale", "full", "experiment scale: full (paper) or quick")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	targets := flag.String("targets", "", "comma-separated flow types for fig4 (default: all)")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "full":
		scale = exp.Full()
	case "quick":
		scale = exp.Quick()
	default:
		fmt.Fprintf(os.Stderr, "pktbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	var targetTypes []apps.FlowType
	if *targets != "" {
		for _, s := range strings.Split(*targets, ",") {
			t, err := apps.ParseFlowType(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "pktbench:", err)
				os.Exit(2)
			}
			targetTypes = append(targetTypes, t)
		}
	}

	names := []string{*expName}
	if *expName == "all" {
		names = []string{"table1", "fig2", "fig4", "fig5", "fig6", "fig7",
			"fig8", "fig9", "fig10", "throttle", "pipeline"}
	}

	// One predictor shared across experiments: solo profiles, sweeps, and
	// co-run measurements are memoised, exactly as an operator would
	// reuse offline profiles.
	p := scale.NewPredictor()
	var fig2 *exp.Fig2Result

	for _, name := range names {
		start := time.Now()
		res, err := run(name, scale, p, &fig2, targetTypes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pktbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s (%s scale)\n%s", name, scale.Name, res.CSV())
		} else {
			fmt.Printf("=== %s (%s scale, %.1fs) ===\n%s\n",
				name, scale.Name, time.Since(start).Seconds(), res.String())
		}
	}
}

func run(name string, scale exp.Scale, p *core.Predictor, fig2 **exp.Fig2Result, targets []apps.FlowType) (result, error) {
	switch name {
	case "table1":
		return exp.RunTable1(scale)
	case "fig2":
		r, err := exp.RunFig2(scale, p)
		if err == nil {
			*fig2 = r
		}
		return r, err
	case "fig4":
		return exp.RunFig4(scale, p, targets)
	case "fig5":
		return exp.RunFig5(scale, p, *fig2)
	case "fig6":
		return exp.RunFig6(scale, p)
	case "fig7":
		return exp.RunFig7(scale, p)
	case "fig8":
		return exp.RunFig8(scale, p)
	case "fig9":
		return exp.RunFig9(scale, p)
	case "fig10":
		return exp.RunFig10(scale, p, nil)
	case "throttle":
		return exp.RunThrottle(scale, p)
	case "pipeline":
		return exp.RunPipeline(scale)
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}
