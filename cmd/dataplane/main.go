// Command dataplane runs the concurrent multi-core runtime on a
// scenario: it profiles the scenario's flow types offline (solo runs and
// drop-versus-competition sweeps on the deterministic engine), then
// executes the scenario on worker goroutines — one per simulated core —
// and reports per-flow observed throughput and drop next to the paper's
// prediction, plus any admission throttling and live re-placement the
// control loop performed.
//
// Scenarios come from Click-style files (-config, see
// examples/scenarios/*.click) or from the builtin catalogue (-scenario).
// The shipped files include the four former builtins, a branching
// NAT/firewall service chain (nat_chain.click) whose pipeline graph is
// declared inline in the file, and the same chain cut across workers
// (nat_chain_staged.click): its `stage 1: fw;` declaration runs the
// firewall tail on a second core connected by a hand-off ring, and the
// report carries one row per stage worker.
//
// Usage:
//
//	dataplane [-config examples/scenarios/nat_chain.click]
//	          [-scenario mixed|bursty|thrash|hidden]
//	          [-scale quick|full] [-platform "SOCKETS 2, L3_BYTES 6291456"]
//	          [-duration 0.05] [-packets N]
//	          [-batch 32] [-ring 512] [-quantum 200000] [-noprofile]
//	          [-migrate-state BYTES] [-telemetry]
//
// The platform is layered: -scale supplies the defaults, a scenario
// file's platform :: Platform(...) block overrides the knobs it names,
// and -platform (same KEY VALUE syntax) overrides both. Offline
// profiling always runs on the effective platform.
//
// Durations are virtual seconds on the simulated platform.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pktpredict/internal/exp"
	"pktpredict/internal/runtime"
	"pktpredict/internal/scenario"
)

func main() {
	configPath := flag.String("config", "", "scenario file (Click-style .click text)")
	scenarioName := flag.String("scenario", "mixed",
		"builtin scenario: "+strings.Join(runtime.ScenarioNames(), ", ")+" (ignored with -config)")
	scaleName := flag.String("scale", "quick", "platform/workload scale: quick or full")
	platformOverrides := flag.String("platform", "",
		`platform overrides as "KEY VALUE, KEY VALUE" (e.g. "SOCKETS 2, L3_BYTES 6291456"); applied over the -scale platform and any scenario Platform block`)
	duration := flag.Float64("duration", 0.05, "measured virtual seconds")
	packets := flag.Uint64("packets", 0, "stop after N processed packets instead of -duration")
	batch := flag.Int("batch", 0, "worker batch size (default 32)")
	ring := flag.Int("ring", 0, "input-ring capacity in packets (default per scenario)")
	quantum := flag.Uint64("quantum", 0, "clock-sync quantum in cycles (default 200000)")
	migrateState := flag.Uint64("migrate-state", 0,
		"state-migration footprint threshold in bytes: re-placed flows whose tables fit are copied to their new socket; 0 keeps the scenario's setting")
	noprofile := flag.Bool("noprofile", false,
		"skip offline profiling (disables prediction, admission limits, re-placement)")
	telemetry := flag.Bool("telemetry", false, "dump per-window telemetry samples")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "full":
		scale = exp.Full()
	case "quick":
		scale = exp.Quick()
	default:
		fatalf("unknown scale %q", *scaleName)
	}

	overrides, err := scenario.ParseOverrides(*platformOverrides)
	if err != nil {
		fatalf("-platform: %v", err)
	}

	var cfg runtime.Config
	if *configPath != "" {
		sc, lerr := scenario.Load(*configPath)
		if lerr != nil {
			fatalf("%v", lerr)
		}
		// Precedence: -scale defaults < file platform block < -platform.
		hwCfg, perr := sc.PlatformConfig(scale.Cfg)
		if perr != nil {
			fatalf("%v", perr)
		}
		if hwCfg, perr = overrides.Apply(hwCfg); perr != nil {
			fatalf("-platform: %v", perr)
		}
		cfg, err = sc.ConfigOn(hwCfg, scale.Params)
	} else {
		hwCfg, perr := overrides.Apply(scale.Cfg)
		if perr != nil {
			fatalf("-platform: %v", perr)
		}
		cfg, err = runtime.ScenarioConfig(*scenarioName, hwCfg, scale.Params)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *ring > 0 {
		cfg.RingSize = *ring
	}
	if *quantum > 0 {
		cfg.QuantumCycles = *quantum
	}
	if *migrateState > 0 {
		cfg.MigrateState = *migrateState
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = scale.Warmup
	}

	if !*noprofile {
		types := cfg.FlowTypes()
		fmt.Fprintf(os.Stderr, "dataplane: profiling %v offline (%s scale)...\n", types, scale.Name)
		start := time.Now()
		// Profiling must use the scenario's workload parameters (thrash,
		// for example, pins the SYN region; file scenarios register their
		// custom graph types) and the effective platform (a Platform
		// block or -platform override changes the curves), not the raw
		// scale's.
		profiles, err := runtime.ProfileFlows(cfg.Cfg, cfg.Params, scale.Warmup, scale.Window,
			scale.SweepGrid, types)
		if err != nil {
			fatalf("profiling: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dataplane: profiling done in %.1fs\n", time.Since(start).Seconds())
		for t, p := range profiles {
			fmt.Fprintf(os.Stderr, "  %-8s solo %.2fM pps, %.1fM refs/s, curve %s\n",
				t, p.SoloPPS/1e6, p.SoloRefsPerSec/1e6, p.Curve)
		}
		cfg.Profiles = profiles
	}

	r, err := runtime.NewRuntime(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	start := time.Now()
	var rep *runtime.Report
	if *packets > 0 {
		rep, err = r.RunPackets(*packets)
	} else {
		rep, err = r.Run(*duration)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "dataplane: ran %.1f ms virtual in %.2fs host\n",
		rep.Duration*1e3, time.Since(start).Seconds())

	fmt.Println(rep.String())

	if *telemetry {
		fmt.Println("telemetry samples:")
		for _, cs := range r.Stats().Samples() {
			for _, w := range cs.Workers {
				app := w.App
				if w.Stages > 1 {
					// A chain worker's ring columns describe its hand-off
					// ring (stage 0 keeps the receive ring).
					app = fmt.Sprintf("%s#%d", w.App, w.Stage)
				}
				fmt.Printf("  t=%.2fms wkr=%d sock=%d %-10s pps=%.2fM refs/s=%.1fM rem/pkt=%.2f occ=%.2f ring=%d/%d delay=%d pred=%.1f%%%s\n",
					cs.Time*1e3, w.Worker, w.Socket, app, w.PPS/1e6, w.RefsPerSec/1e6,
					w.RemotePerPacket, w.BatchOccupancy, w.RingDepth, w.RingCap, w.DelayCycles,
					w.PredictedDrop*100, throttledMark(w.Throttled))
			}
		}
	}
}

func throttledMark(t bool) string {
	if t {
		return " THROTTLED"
	}
	return ""
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dataplane: "+format+"\n", args...)
	os.Exit(1)
}
