// Command dataplane runs the concurrent multi-core runtime on a
// scenario: it profiles the scenario's flow types offline (solo runs and
// drop-versus-competition sweeps on the deterministic engine), then
// executes the scenario on worker goroutines — one per simulated core —
// and reports per-flow observed throughput and drop next to the paper's
// prediction, plus any admission throttling and live re-placement the
// control loop performed.
//
// Scenarios come from Click-style files (-config, see
// examples/scenarios/*.click) or from the builtin catalogue (-scenario).
// The shipped files include the four former builtins, a branching
// NAT/firewall service chain (nat_chain.click) whose pipeline graph is
// declared inline in the file, and the same chain cut across workers
// (nat_chain_staged.click): its `stage 1: fw;` declaration runs the
// firewall tail on a second core connected by a hand-off ring, and the
// report carries one row per stage worker.
//
// Usage:
//
//	dataplane [-config examples/scenarios/nat_chain.click]
//	          [-scenario mixed|bursty|thrash|hidden]
//	          [-scale quick|full] [-platform "SOCKETS 2, L3_BYTES 6291456"]
//	          [-duration 0.05] [-packets N]
//	          [-batch 32] [-ring 512] [-quantum 200000] [-noprofile]
//	          [-migrate-state BYTES] [-telemetry]
//	          [-metrics-addr :9090] [-residuals]
//	          [-trace-sample 64] [-trace-out trace.json]
//
// Observability: -metrics-addr serves the live metrics registry over
// HTTP while the dataplane runs (/metrics Prometheus text, /metrics.json
// JSON) — scrape-safe mid-run, including per-element cost counters,
// end-to-end latency quantiles, and SLO burn gauges. -residuals prints
// the per-window prediction-residual series (predicted vs observed drop
// per app, with a diagnosed cause — profile drift names the specific
// element whose live cost diverged from its offline baseline). The
// final report includes a per-app latency table (p50/p99/p999 in
// virtual µs, with SLO breach counts) whenever latencies were recorded. -trace-sample N tags one in N packets
// entering each staged chain and records per-stage exec spans in virtual
// time; -trace-out writes them as Chrome trace-event JSON loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// The platform is layered: -scale supplies the defaults, a scenario
// file's platform :: Platform(...) block overrides the knobs it names,
// and -platform (same KEY VALUE syntax) overrides both. Offline
// profiling always runs on the effective platform.
//
// Durations are virtual seconds on the simulated platform.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pktpredict/internal/exp"
	"pktpredict/internal/obs"
	"pktpredict/internal/runtime"
	"pktpredict/internal/scenario"
)

func main() {
	configPath := flag.String("config", "", "scenario file (Click-style .click text)")
	scenarioName := flag.String("scenario", "mixed",
		"builtin scenario: "+strings.Join(runtime.ScenarioNames(), ", ")+" (ignored with -config)")
	scaleName := flag.String("scale", "quick", "platform/workload scale: quick or full")
	platformOverrides := flag.String("platform", "",
		`platform overrides as "KEY VALUE, KEY VALUE" (e.g. "SOCKETS 2, L3_BYTES 6291456"); applied over the -scale platform and any scenario Platform block`)
	duration := flag.Float64("duration", 0.05, "measured virtual seconds")
	packets := flag.Uint64("packets", 0, "stop after N processed packets instead of -duration")
	batch := flag.Int("batch", 0, "worker batch size (default 32)")
	ring := flag.Int("ring", 0, "input-ring capacity in packets (default per scenario)")
	quantum := flag.Uint64("quantum", 0, "clock-sync quantum in cycles (default 200000)")
	migrateState := flag.Uint64("migrate-state", 0,
		"state-migration footprint threshold in bytes: re-placed flows whose tables fit are copied to their new socket; 0 keeps the scenario's setting")
	noprofile := flag.Bool("noprofile", false,
		"skip offline profiling (disables prediction, admission limits, re-placement)")
	telemetry := flag.Bool("telemetry", false, "dump per-window telemetry samples")
	metricsAddr := flag.String("metrics-addr", "",
		"serve live metrics over HTTP on this address (/metrics Prometheus text, /metrics.json)")
	residuals := flag.Bool("residuals", false,
		"print the per-window prediction-residual series with diagnosed causes")
	traceSample := flag.Int("trace-sample", 0,
		"trace one in N packets entering each staged chain (0 disables)")
	traceOut := flag.String("trace-out", "",
		"write sampled chain traces as Chrome trace-event JSON to this file (implies -trace-sample 64 if unset)")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "full":
		scale = exp.Full()
	case "quick":
		scale = exp.Quick()
	default:
		fatalf("unknown scale %q", *scaleName)
	}

	overrides, err := scenario.ParseOverrides(*platformOverrides)
	if err != nil {
		fatalf("-platform: %v", err)
	}

	var cfg runtime.Config
	if *configPath != "" {
		sc, lerr := scenario.Load(*configPath)
		if lerr != nil {
			fatalf("%v", lerr)
		}
		// Precedence: -scale defaults < file platform block < -platform.
		hwCfg, perr := sc.PlatformConfig(scale.Cfg)
		if perr != nil {
			fatalf("%v", perr)
		}
		if hwCfg, perr = overrides.Apply(hwCfg); perr != nil {
			fatalf("-platform: %v", perr)
		}
		cfg, err = sc.ConfigOn(hwCfg, scale.Params)
	} else {
		hwCfg, perr := overrides.Apply(scale.Cfg)
		if perr != nil {
			fatalf("-platform: %v", perr)
		}
		cfg, err = runtime.ScenarioConfig(*scenarioName, hwCfg, scale.Params)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *ring > 0 {
		cfg.RingSize = *ring
	}
	if *quantum > 0 {
		cfg.QuantumCycles = *quantum
	}
	if *migrateState > 0 {
		cfg.MigrateState = *migrateState
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = scale.Warmup
	}

	if !*noprofile {
		types := cfg.FlowTypes()
		fmt.Fprintf(os.Stderr, "dataplane: profiling %v offline (%s scale)...\n", types, scale.Name)
		start := time.Now()
		// Profiling must use the scenario's workload parameters (thrash,
		// for example, pins the SYN region; file scenarios register their
		// custom graph types) and the effective platform (a Platform
		// block or -platform override changes the curves), not the raw
		// scale's.
		profiles, err := runtime.ProfileFlows(cfg.Cfg, cfg.Params, scale.Warmup, scale.Window,
			scale.SweepGrid, types)
		if err != nil {
			fatalf("profiling: %v", err)
		}
		fmt.Fprintf(os.Stderr, "dataplane: profiling done in %.1fs\n", time.Since(start).Seconds())
		for t, p := range profiles {
			extra := ""
			if len(p.Elements) > 0 {
				extra = fmt.Sprintf(", %d element baselines", len(p.Elements))
			}
			fmt.Fprintf(os.Stderr, "  %-8s solo %.2fM pps, %.1fM refs/s, curve %s%s\n",
				t, p.SoloPPS/1e6, p.SoloRefsPerSec/1e6, p.Curve, extra)
		}
		cfg.Profiles = profiles
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		srv, serr := obs.Serve(*metricsAddr, reg)
		if serr != nil {
			fatalf("-metrics-addr: %v", serr)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dataplane: serving metrics on http://%s/metrics\n", srv.Addr)
		cfg.Metrics = reg
	}
	if *traceOut != "" && *traceSample == 0 {
		*traceSample = 64
	}
	cfg.TraceSample = *traceSample
	if *residuals {
		// Live per-window residual report: each control barrier prints the
		// apps whose prediction diverged, with the diagnosed cause.
		cfg.OnWindow = func(cs runtime.ControlSample, res []obs.Residual) {
			for _, rr := range res {
				if rr.Cause == obs.CauseNone {
					continue
				}
				fmt.Fprintf(os.Stderr, "residual t=%.2fms %-10s pred=%.1f%% obs=%.1f%% [%s] %s\n",
					rr.Time*1e3, rr.App, rr.Predicted*100, rr.Observed*100, rr.Cause, rr.Evidence)
			}
		}
	}

	r, err := runtime.NewRuntime(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	start := time.Now()
	var rep *runtime.Report
	if *packets > 0 {
		rep, err = r.RunPackets(*packets)
	} else {
		rep, err = r.Run(*duration)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "dataplane: ran %.1f ms virtual in %.2fs host\n",
		rep.Duration*1e3, time.Since(start).Seconds())

	fmt.Println(rep.String())

	if *residuals {
		printResiduals(rep.Residuals)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, r, cfg.Cfg.ClockHz); err != nil {
			fatalf("%v", err)
		}
	}

	if *telemetry {
		fmt.Println("telemetry samples:")
		for _, cs := range r.Stats().Samples() {
			for _, w := range cs.Workers {
				app := w.App
				if w.Stages > 1 {
					// A chain worker's ring columns describe its hand-off
					// ring (stage 0 keeps the receive ring).
					app = fmt.Sprintf("%s#%d", w.App, w.Stage)
				}
				fmt.Printf("  t=%.2fms wkr=%d sock=%d %-10s pps=%.2fM refs/s=%.1fM rem/pkt=%.2f occ=%.2f ring=%d/%d delay=%d pred=%.1f%%%s\n",
					cs.Time*1e3, w.Worker, w.Socket, app, w.PPS/1e6, w.RefsPerSec/1e6,
					w.RemotePerPacket, w.BatchOccupancy, w.RingDepth, w.RingCap, w.DelayCycles,
					w.PredictedDrop*100, throttledMark(w.Throttled))
			}
		}
	}
}

// printResiduals renders the retained prediction-residual time series:
// the paper's accuracy metric per control window, with each divergence's
// diagnosed cause.
func printResiduals(res []obs.Residual) {
	if len(res) == 0 {
		fmt.Println("residual series: empty (no profiled apps, or run shorter than one control window)")
		return
	}
	fmt.Println("prediction-residual series:")
	for _, rr := range res {
		line := fmt.Sprintf("  t=%.2fms %-10s pred=%5.1f%% obs=%5.1f%% resid=%+5.1f%% [%s]",
			rr.Time*1e3, rr.App, rr.Predicted*100, rr.Observed*100, rr.Residual*100, rr.Cause)
		if rr.Evidence != "" {
			line += " " + rr.Evidence
		}
		fmt.Println(line)
	}
}

// writeTrace exports the run's sampled chain spans as Chrome trace-event
// JSON (Perfetto / chrome://tracing).
func writeTrace(path string, r *runtime.Runtime, clockHz float64) error {
	t := r.Tracer()
	if t == nil {
		return fmt.Errorf("trace: no tracer (is -trace-sample set?)")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := t.WriteChrome(f, clockHz); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	n := len(t.Events())
	msg := fmt.Sprintf("dataplane: wrote %d trace spans to %s", n, path)
	if d := t.Dropped(); d > 0 {
		msg += fmt.Sprintf(" (%d spans dropped: raise TraceCap or sample less)", d)
	}
	if n == 0 {
		msg += " (no staged chains in this scenario, or no sampled packet completed)"
	}
	fmt.Fprintln(os.Stderr, msg)
	return f.Close()
}

func throttledMark(t bool) string {
	if t {
		return " THROTTLED"
	}
	return ""
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dataplane: "+format+"\n", args...)
	os.Exit(1)
}
