// Command predict applies the paper's three-step prediction method to a
// user-specified workload mix: it profiles each flow type solo, builds
// the target's drop-versus-competition curve with SYN sweeps, and
// predicts every flow's contention-induced drop. With -validate it also
// co-runs the mix and reports measured drops and prediction error.
//
// Usage:
//
//	predict -mix MON,MON,VPN,VPN,FW,RE [-scale full|quick] [-validate]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pktpredict/internal/apps"
	"pktpredict/internal/exp"
)

func main() {
	mixArg := flag.String("mix", "MON,MON,VPN,VPN,FW,RE", "comma-separated flow types sharing one socket")
	scaleName := flag.String("scale", "full", "full or quick")
	validate := flag.Bool("validate", false, "also co-run the mix and report measured drops")
	flag.Parse()

	var scale exp.Scale
	switch *scaleName {
	case "full":
		scale = exp.Full()
	case "quick":
		scale = exp.Quick()
	default:
		fmt.Fprintf(os.Stderr, "predict: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	var mix []apps.FlowType
	for _, s := range strings.Split(*mixArg, ",") {
		t, err := apps.ParseFlowType(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict:", err)
			os.Exit(2)
		}
		mix = append(mix, t)
	}

	p := scale.NewPredictor()
	preds, sorted, err := p.PredictMix(mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}

	fmt.Printf("workload mix: %v\n\n", sorted)
	if !*validate {
		fmt.Printf("%-8s %14s %16s\n", "flow", "pred. drop", "competition")
		for i, t := range sorted {
			fmt.Printf("%-8s %13.1f%% %13.1fM/s\n", t,
				preds[i].Drop*100, preds[i].CompetingRefsPerSec/1e6)
		}
		return
	}

	measured, _, err := p.MeasuredDrops(mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predict:", err)
		os.Exit(1)
	}
	fmt.Printf("%-8s %12s %12s %10s\n", "flow", "predicted", "measured", "|error|")
	var worst float64
	for i, t := range sorted {
		e := preds[i].Drop - measured[i]
		if e < 0 {
			e = -e
		}
		if e > worst {
			worst = e
		}
		fmt.Printf("%-8s %11.1f%% %11.1f%% %9.2f%%\n", t,
			preds[i].Drop*100, measured[i]*100, e*100)
	}
	fmt.Printf("\nworst-case error: %.2f%%\n", worst*100)
}
