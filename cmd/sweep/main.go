// Command sweep executes an evaluation grid — platform variants ×
// offered-load multipliers × scenario files — in parallel and reports
// per-app predicted-versus-measured drop, goodput, and remote-reference
// locality at every point, aggregated into max/mean prediction error:
// the paper's evaluation table as a one-command regression harness.
//
// Usage:
//
//	sweep -config examples/sweeps/paper_mixes.sweep
//	      [-scale quick|full] [-platform "KEY VALUE, ..."]
//	      [-parallel N] [-json report.json] [-md report.md] [-q]
//	      [-profile-cache cache.json]
//	      [-trend trend.json] [-trend-md trend.md] [-trend-svg dir]
//
// -profile-cache persists offline profiling results keyed by their full
// inputs (platform, workload parameters, profiling windows, sweep grid,
// flow type) plus the git revision. A warm cache turns the dominant cost
// of a -scale full sweep — re-deriving unchanged solo profiles and
// contention curves — into a file read; any input change, including a new
// commit, misses and re-profiles.
//
// -trend appends this run's per-scenario max/mean prediction error and
// worst p99 latency to a persistent store keyed by git revision and
// scenario, and prints the accumulated trend table — the accuracy time
// series across commits that catches a slow regression the per-run
// tolerance gate still admits. -trend-md writes that table to a file
// and -trend-svg renders one sparkline SVG per scenario, the artifacts
// the nightly full-scale job uploads.
//
// The markdown report is printed to stdout (and to -md when given); the
// JSON report is written to -json. The exit status is the gate: 0 when
// every point's validated apps are within the scenario's prediction-
// error tolerance AND every declared latency SLO held, 1 otherwise —
// which is how CI turns the smoke grid into a per-PR data point (the
// JSON report is uploaded as an artifact).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"pktpredict/internal/exp"
	"pktpredict/internal/scenario"
	"pktpredict/internal/sweep"
)

// gitRev keys trend entries by the working tree's commit; outside a git
// checkout (or without git) the entries still append under "unknown".
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	configPath := flag.String("config", "", "sweep grid file (.sweep, see examples/sweeps/)")
	scaleName := flag.String("scale", "quick", "platform/workload scale: quick or full")
	platformOverrides := flag.String("platform", "",
		`platform overrides as "KEY VALUE, KEY VALUE", applied on top of every grid variant`)
	parallel := flag.Int("parallel", 0, "max concurrent grid points (default: the sweep file's PARALLEL, else GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write the JSON report here")
	mdPath := flag.String("md", "", "write the markdown report here (stdout always gets it)")
	cachePath := flag.String("profile-cache", "",
		"persistent offline-profile cache file: profiles keyed by platform, workload, windows, grid, flow type, and git revision; warm entries skip re-profiling")
	trendPath := flag.String("trend", "",
		"append per-scenario prediction error to this JSON trend store (keyed by git rev + scenario) and print the trend table")
	trendMD := flag.String("trend-md", "", "write the trend markdown table here (requires -trend)")
	trendSVG := flag.String("trend-svg", "", "write one per-scenario sparkline SVG into this directory (requires -trend)")
	quiet := flag.Bool("q", false, "suppress per-point progress on stderr")
	flag.Parse()

	if *configPath == "" {
		fatalf("-config is required")
	}
	var scale exp.Scale
	switch *scaleName {
	case "full":
		scale = exp.Full()
	case "quick":
		scale = exp.Quick()
	default:
		fatalf("unknown scale %q", *scaleName)
	}
	cfg, err := sweep.LoadConfig(*configPath)
	if err != nil {
		fatalf("%v", err)
	}
	if *parallel < 0 {
		fatalf("-parallel %d negative", *parallel)
	}
	if *parallel > 0 {
		cfg.Parallel = *parallel
	}
	overrides, err := scenario.ParseOverrides(*platformOverrides)
	if err != nil {
		fatalf("-platform: %v", err)
	}

	r := &sweep.Runner{Config: cfg, Scale: scale, Overrides: overrides}
	if *cachePath != "" {
		// Salting the keys with the git revision means a code change can
		// never serve stale curves; re-runs at the same revision (CI
		// retries, nightly restores, local iteration) start warm.
		cache, err := sweep.OpenProfileCache(*cachePath, gitRev())
		if err != nil {
			fatalf("%v", err)
		}
		r.ProfileCache = cache
	}
	if !*quiet {
		r.Progress = os.Stderr
		fmt.Fprintf(os.Stderr, "sweep: %s — %d platforms × %d loads × %d scenarios = %d points (%s scale)\n",
			cfg.Name, len(cfg.Platforms), len(cfg.Loads), len(cfg.Runs), cfg.Points(), scale.Name)
	}
	rep, err := r.Run()
	if err != nil {
		fatalf("%v", err)
	}
	if r.ProfileCache != nil {
		hits, misses := r.ProfileCache.Stats()
		fmt.Fprintf(os.Stderr, "sweep: profile cache %s: %d hits, %d misses, %d entries\n",
			*cachePath, hits, misses, r.ProfileCache.Len())
	}

	md := rep.Markdown()
	fmt.Print(md)
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md), 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if *jsonPath != "" {
		js, err := rep.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*jsonPath, append(js, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if *trendMD != "" && *trendPath == "" {
		fatalf("-trend-md requires -trend")
	}
	if *trendSVG != "" && *trendPath == "" {
		fatalf("-trend-svg requires -trend")
	}
	if *trendPath != "" {
		trend, err := sweep.LoadTrend(*trendPath)
		if err != nil {
			fatalf("%v", err)
		}
		trend.Append(rep, gitRev(), time.Now().UTC().Format(time.RFC3339))
		if err := trend.Save(*trendPath); err != nil {
			fatalf("trend: %v", err)
		}
		fmt.Print("\n" + trend.Markdown())
		if *trendMD != "" {
			if err := os.WriteFile(*trendMD, []byte(trend.Markdown()), 0o644); err != nil {
				fatalf("trend: %v", err)
			}
		}
		if *trendSVG != "" {
			if err := os.MkdirAll(*trendSVG, 0o755); err != nil {
				fatalf("trend: %v", err)
			}
			for _, scen := range trend.Scenarios() {
				svg := trend.SparklineSVG(scen)
				if svg == "" {
					continue
				}
				path := filepath.Join(*trendSVG, "trend-"+scen+".svg")
				if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
					fatalf("trend: %v", err)
				}
			}
		}
	}
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "sweep: FAIL — %d/%d points outside tolerance (max |err| %.1f%%)\n",
			rep.Failed, len(rep.Points), rep.MaxAbsErr*100)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweep: PASS — max |err| %.1f%%, mean %.1f%% over %d points\n",
		rep.MaxAbsErr*100, rep.MeanAbsErr*100, len(rep.Points))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(1)
}
