module pktpredict

go 1.24
