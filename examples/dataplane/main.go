// Dataplane example: assemble a custom concurrent runtime
// programmatically — two IP-forwarding replicas sharded by RSS flow hash
// plus one monitoring flow, executed on three worker goroutines (one per
// simulated core) — run it for a few virtual milliseconds, and read both
// the final report and the live telemetry the control loop sampled.
//
// For the builtin scenarios with offline-profiled prediction, admission
// control, and live re-placement, see cmd/dataplane.
package main

import (
	"fmt"
	"log"

	"pktpredict/internal/apps"
	"pktpredict/internal/hw"
	"pktpredict/internal/runtime"
)

func main() {
	cfg := runtime.Config{
		Cfg:    hw.DefaultConfig(),
		Params: apps.Small(), // small tables keep the example instant
		Apps: []runtime.AppSpec{
			// Saturating IP forwarding, sharded across two cores: the
			// dispatcher hashes each generated packet's 5-tuple and all
			// packets of a transport flow land on the same replica.
			{Name: "ipfwd", Type: apps.IP, Workers: 2},
			// Monitoring at a fixed offered rate of 500k packets/sec.
			{Name: "mon", Type: apps.MON, Workers: 1, Rate: 500_000},
		},
		Warmup:   0.001,
		Scenario: "example",
	}
	r, err := runtime.NewRuntime(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := r.Run(0.01) // 10 virtual milliseconds
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(rep.String())

	// The Stats aggregator holds every control-interval sample; the last
	// one is what a live dashboard would show.
	last := r.Stats().Latest()
	fmt.Printf("final window (t=%.1fms):\n", last.Time*1e3)
	for _, w := range last.Workers {
		fmt.Printf("  worker %d (core %d, %s): %.2fM pps, %.1fM L3 refs/s, ring %d/%d\n",
			w.Worker, w.Core, w.App, w.PPS/1e6, w.RefsPerSec/1e6, w.RingDepth, w.RingCap)
	}
}
