// Middlebox consolidation: a network operator packs different clients'
// packet-processing onto one socket — monitoring for one client, VPN
// tunnelling for another, a firewall and a WAN optimiser for a third —
// and wants to know, before deploying, how much each flow will slow down.
//
// This is the paper's Figure 9 scenario: predict each flow's
// contention-induced drop from offline profiles only, then validate
// against the measured co-run.
package main

import (
	"fmt"
	"log"

	"pktpredict/internal/apps"
	"pktpredict/internal/exp"
)

func main() {
	scale := exp.Full()
	// Shorter windows than the benchmark defaults keep this example
	// interactive while preserving steady-state measurement.
	scale.Warmup, scale.Window = 0.003, 0.008
	scale.SweepGrid = []int{1600, 400, 100, 25, 0}

	p := scale.NewPredictor()
	mix := []apps.FlowType{apps.MON, apps.MON, apps.VPN, apps.VPN, apps.FW, apps.RE}
	fmt.Printf("consolidated middlebox workload (one socket): %v\n\n", mix)

	fmt.Println("offline profiling (solo runs + SYN sweeps)...")
	preds, sorted, err := p.PredictMix(mix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("validating against the measured co-run...")
	measured, _, err := p.MeasuredDrops(mix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s %12s %12s %10s\n", "flow", "predicted", "measured", "|error|")
	var worst float64
	for i, t := range sorted {
		e := preds[i].Drop - measured[i]
		if e < 0 {
			e = -e
		}
		if e > worst {
			worst = e
		}
		fmt.Printf("%-8s %11.1f%% %11.1f%% %9.2f%%\n",
			t, preds[i].Drop*100, measured[i]*100, e*100)
	}
	fmt.Printf("\nworst-case prediction error: %.2f%% (paper: 1.26%% for this mix)\n", worst*100)
}
