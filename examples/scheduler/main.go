// Scheduler exploration: is contention-aware flow placement worth it?
//
// The paper's Section 5 answer: barely. This example evaluates every
// distinct placement of 6 MON + 6 FW flows (the combination with the
// largest best-to-worst gap) and shows that even the worst placement
// costs only a few percent of overall performance versus the best.
package main

import (
	"fmt"
	"log"

	"pktpredict/internal/apps"
	"pktpredict/internal/core"
	"pktpredict/internal/exp"
)

func main() {
	scale := exp.Full()
	scale.Warmup, scale.Window = 0.003, 0.008

	p := scale.NewPredictor()
	var flows []apps.FlowType
	for i := 0; i < 6; i++ {
		flows = append(flows, apps.MON, apps.FW)
	}

	fmt.Println("evaluating all distinct placements of 6 MON + 6 FW on 2 sockets...")
	eval, err := core.EvaluatePlacements(p, flows)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-40s %10s\n", "placement (socket0 | socket1)", "avg drop")
	for _, pl := range eval.All {
		fmt.Printf("%-40v %9.1f%%\n", placementLabel(pl), pl.AvgDrop*100)
	}
	fmt.Printf("\nbest placement:  %.1f%% average drop\n", eval.Best.AvgDrop*100)
	fmt.Printf("worst placement: %.1f%% average drop\n", eval.Worst.AvgDrop*100)
	fmt.Printf("contention-aware scheduling gain: %.1f%% (paper: ~2%%)\n", eval.Gain*100)

	fmt.Println("\nper-flow drops under best and worst placement (Figure 10(b)):")
	fmt.Printf("%-10s %12s %12s\n", "flow", "best", "worst")
	for _, t := range []apps.FlowType{apps.MON, apps.FW} {
		fmt.Printf("%-10s %11.1f%% %11.1f%%\n", t,
			avgFor(eval.Best, t)*100, avgFor(eval.Worst, t)*100)
	}
}

func placementLabel(pl core.Placement) string {
	count := func(ts []apps.FlowType, w apps.FlowType) int {
		n := 0
		for _, t := range ts {
			if t == w {
				n++
			}
		}
		return n
	}
	return fmt.Sprintf("%dMON+%dFW | %dMON+%dFW",
		count(pl.Socket0, apps.MON), count(pl.Socket0, apps.FW),
		count(pl.Socket1, apps.MON), count(pl.Socket1, apps.FW))
}

func avgFor(pl core.Placement, t apps.FlowType) float64 {
	var sum float64
	n := 0
	for _, fd := range pl.PerFlow {
		if fd.Type == t {
			sum += fd.Drop
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
