// mixed — a realistic middlebox mix (IP forwarding, monitoring, VPN,
// firewall) saturating one socket; the baseline predicted-versus-observed
// comparison. FIT admits flows in declaration order until one socket
// (at most 6 cores) is full, so the same file works on any platform.
scenario :: Scenario(NAME mixed, MIN_CORES_PER_SOCKET 4, FIT 6);

ipfwd :: Flow(TYPE IP, WORKERS 2);
mon   :: Flow(TYPE MON, WORKERS 1);
vpn   :: Flow(TYPE VPN, WORKERS 1);
fw    :: Flow(TYPE FW, WORKERS 1);
mon2  :: Flow(TYPE MON, WORKERS 1);
