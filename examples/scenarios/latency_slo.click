// latency_slo — the mixed middlebox mix with end-to-end latency
// objectives on its paced flows: the runtime tracks each flow's
// virtual-time p50/p99/p999 and burn rate against the declared budget,
// and cmd/sweep exits non-zero when a whole-run p99 misses it. The
// saturating forwarding flow carries no objective — a flow pushed to
// its drop point has unbounded queueing delay by construction.
scenario :: Scenario(NAME latency_slo, MIN_CORES_PER_SOCKET 4, FIT 6);

ipfwd :: Flow(TYPE IP, WORKERS 2);
mon   :: Flow(TYPE MON, WORKERS 1, RATE_FRACTION 0.7, SLO_P99_US 500);
vpn   :: Flow(TYPE VPN, WORKERS 1, RATE_FRACTION 0.7, SLO_P99_US 800);
