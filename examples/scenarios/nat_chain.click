// nat_chain — a branching NAT/firewall service chain next to monitoring
// and VPN neighbours. Traffic is classified by transport protocol: TCP
// and UDP both pass the stateful NAT (rewrite + port allocation + flow
// table) and the firewall, anything else is discarded; a tee mirrors the
// forwarded stream to a counter, exercising broadcast fan-out. The graph
// becomes a custom flow type (NATFW) that is profiled offline and
// predicted exactly like the builtin workloads.
scenario :: Scenario(NAME nat_chain, MIN_CORES_PER_SOCKET 4);

graph NATFW {
    src    :: FromDevice(SIZE 64);
    cls    :: IPClassifier(tcp, udp, -);
    nat    :: IPRewriter(EXTIP 198.51.100.1, CAPACITY 65536);
    fw     :: IPFilter(RULES 1000);
    tee    :: Tee;
    mirror :: Counter;
    src -> CheckIPHeader -> cls;
    cls[0] -> nat;
    cls[1] -> nat;
    cls[2] -> Discard;
    nat -> fw -> tee;
    tee[0] -> ToDevice;
    tee[1] -> mirror -> Discard;
}

natfw :: Flow(GRAPH NATFW, WORKERS 2);
mon   :: Flow(TYPE MON, WORKERS 1);
vpn   :: Flow(TYPE VPN, WORKERS 1);
