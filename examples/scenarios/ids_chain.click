// ids_chain — the IDS workload class as a run-to-completion service
// chain. The detector cascade deliberately spans the cost spectrum:
// SignatureClassifier scans every payload byte of every packet through
// a compiled multi-pattern DFA (cheap, always on); payloads that embed
// a signature take the slow path through EntropyGate (the expensive
// detector — a sampled Shannon-entropy estimate costing hundreds of
// nanoseconds); high-entropy suspects then hit BanTable, the chain's
// large mutable state — an LRU verdict cache over source addresses that
// drops repeat offenders. The source shapes payloads so both detectors
// see work at controlled rates: 6% of payloads embed one of 16 derived
// signatures (SIG_SEED 11 on the source and the classifier derives the
// same set), and half the payloads are drawn from a 4-value alphabet so
// the entropy gate's threshold actually splits the suspect path.
// An FW neighbour co-runs on the same socket. (FW rather than MON: the
// IDS chain's payload reads are L3-resident hits, and a refs/sec-keyed
// contention curve for a cache-sensitive neighbour would over-price
// them; the compute-bound FW keeps the co-runner's prediction honest.)
scenario :: Scenario(NAME ids_chain, MIN_CORES_PER_SOCKET 2);

graph IDS {
    src  :: FromDevice(SIZE 512, FLOWS 4096, SIG_HIT 0.06, SIG_COUNT 16, SIG_SEED 11,
                       LOW_ENTROPY 0.5, LOW_ENTROPY_BITS 2);
    chk  :: CheckIPHeader;
    sig  :: SignatureClassifier(SIG_SEED 11, PATTERNS 16);
    ent  :: EntropyGate(THRESHOLD 6.5, WINDOW 512);
    bans :: BanTable(ENTRIES 16384);
    src -> chk -> sig;
    sig[0] -> ToDevice;
    sig[1] -> ent;
    ent[0] -> ToDevice;
    ent[1] -> bans;
    bans[0] -> ToDevice;
    bans[1] -> Discard;
}

ids :: Flow(GRAPH IDS, WORKERS 2, PACKET_SIZE 512);
fw :: Flow(TYPE FW, WORKERS 1);
