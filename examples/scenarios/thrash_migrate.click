// thrash_migrate — the thrash scenario with state migration enabled:
// when re-placement separates the monitoring victims from the SYN_MAX
// thrashers, MIGRATE_STATE lets any re-placed flow whose live state
// footprint is at most 8 MiB carry its tables to the new socket (the
// copy is charged as remote reads plus local writes on the destination
// core). Without the knob a migrated flow's tables stay behind and every
// reference crosses the interconnect forever — compare the post-swap
// remote-refs-per-packet telemetry of the two variants.
scenario :: Scenario(NAME thrash_migrate, MIN_SOCKETS 2, MIN_CORES_PER_SOCKET 2,
                     SYN_REGION_FRACTION 0.5, DROP_THRESHOLD 0.05,
                     MIGRATE_STATE 8388608,
                     PLACE 0 1 s1:0 s1:1);

mon-a    :: Flow(TYPE MON, WORKERS 1);
thrash-a :: Flow(TYPE SYN_MAX, WORKERS 1);
mon-b    :: Flow(TYPE MON, WORKERS 1);
thrash-b :: Flow(TYPE SYN_MAX, WORKERS 1);
