// bursty — steady monitoring plus an on/off VPN source whose bursts
// overrun its rings, exercising queueing and tail drop. The VPN offers
// 1.8x its solo rate for 6 quanta, then goes quiet for 6: the ring
// absorbs the front of each burst, then tail-drops.
scenario :: Scenario(NAME bursty, MIN_CORES_PER_SOCKET 4, RING 256);

mon :: Flow(TYPE MON, WORKERS 2, RATE_FRACTION 0.7);
vpn :: Flow(TYPE VPN, WORKERS 2, RATE_FRACTION 1.8, BURST_ON 6, BURST_OFF 6);
