// mixed_half_l3 — the mixed middlebox mix pinned to a platform variant
// declared in the scenario itself: same topology as the base (-scale)
// platform but with the shared L3 halved to 512 KiB (sized against the
// quick scale's 1 MiB L3; on -scale full pass a full-size override
// instead). The platform block is what lets one file carry its own
// platform shape: `cmd/dataplane -config` and the sweep harness resolve
// it identically, and profiling runs on the overridden platform, so the
// prediction tracks the steeper contention curves.
scenario :: Scenario(NAME mixed_half_l3, MIN_CORES_PER_SOCKET 4, FIT 6);

platform :: Platform(L3_BYTES 524288, LINE_BYTES 64);

ipfwd :: Flow(TYPE IP, WORKERS 2);
mon   :: Flow(TYPE MON, WORKERS 1);
vpn   :: Flow(TYPE VPN, WORKERS 1);
fw    :: Flow(TYPE FW, WORKERS 1);
mon2  :: Flow(TYPE MON, WORKERS 1);
