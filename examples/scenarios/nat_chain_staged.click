// nat_chain_staged — the NAT/firewall service chain of nat_chain.click
// deployed as a cross-worker pipeline: classification and the stateful
// NAT run on one worker, the firewall tail (firewall, tee, mirror) on a
// second worker on the other socket, connected by a hand-off ring. The
// `stage 1: fw;` declaration cuts the graph at the firewall; everything
// downstream of fw inherits stage 1. PLACE pins stage 0 to socket 0 and
// stage 1 to socket 1, so the hand-off's descriptor and header lines
// cross the interconnect — the Section 2.2 pipelining costs, live in the
// runtime. A run-to-completion MON neighbour shares socket 0.
scenario :: Scenario(NAME nat_chain_staged, MIN_CORES_PER_SOCKET 2, MIN_SOCKETS 2, PLACE s0:0 s1:0 s0:1);

graph NATFW {
    src    :: FromDevice(SIZE 64);
    cls    :: IPClassifier(tcp, udp, -);
    nat    :: IPRewriter(EXTIP 198.51.100.1, CAPACITY 65536);
    fw     :: IPFilter(RULES 1000);
    tee    :: Tee;
    mirror :: Counter;
    src -> CheckIPHeader -> cls;
    cls[0] -> nat;
    cls[1] -> nat;
    cls[2] -> Discard;
    nat -> fw -> tee;
    tee[0] -> ToDevice;
    tee[1] -> mirror -> Discard;
    stage 1: fw;
}

natfw :: Flow(GRAPH NATFW, WORKERS 1);
mon   :: Flow(TYPE MON, WORKERS 1);
