// hidden — the Section 4 adversary: a flow that profiles like a
// firewall, then (after 2000 packets) turns into a cache thrasher;
// admission control clamps it back to its profiled rate through its
// control element.
scenario :: Scenario(NAME hidden, MIN_CORES_PER_SOCKET 4, ADMISSION true);

mon   :: Flow(TYPE MON, WORKERS 3);
rogue :: Flow(TYPE FW, WORKERS 1, HIDDEN_TRIGGER 2000);
