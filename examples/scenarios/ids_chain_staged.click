// ids_chain_staged — the IDS chain of ids_chain.click deployed as a
// cross-worker pipeline with the ban table on its own stage: the scan
// and entropy detectors run on one worker, the BanTable tail on a
// second worker on the other socket, connected by a hand-off ring. The
// `stage 1: bans;` declaration cuts the graph at the ban table, so the
// chain's large mutable state lives with the stage-1 worker and the
// suspect path's packets cross the interconnect to reach it. PLACE pins
// stage 0 to socket 0 and stage 1 to socket 1. MIGRATE_STATE is sized
// so a re-placed BanTable (16384 line-sized slots = 1 MiB) carries its
// state to the new socket instead of stranding it — the staged layout
// is MIGRATE_STATE-ready, and the unstaged migration path is exercised
// by the runtime's IDS migration test.
scenario :: Scenario(NAME ids_chain_staged, MIN_CORES_PER_SOCKET 2, MIN_SOCKETS 2,
                     MIGRATE_STATE 8388608, PLACE s0:0 s1:0 s0:1);

graph IDS {
    src  :: FromDevice(SIZE 512, FLOWS 4096, SIG_HIT 0.06, SIG_COUNT 16, SIG_SEED 11,
                       LOW_ENTROPY 0.5, LOW_ENTROPY_BITS 2);
    chk  :: CheckIPHeader;
    sig  :: SignatureClassifier(SIG_SEED 11, PATTERNS 16);
    ent  :: EntropyGate(THRESHOLD 6.5, WINDOW 512);
    bans :: BanTable(ENTRIES 16384);
    src -> chk -> sig;
    sig[0] -> ToDevice;
    sig[1] -> ent;
    ent[0] -> ToDevice;
    ent[1] -> bans;
    bans[0] -> ToDevice;
    bans[1] -> Discard;
    stage 1: bans;
}

ids :: Flow(GRAPH IDS, WORKERS 1, PACKET_SIZE 512);
fw :: Flow(TYPE FW, WORKERS 1);
