// thrash — monitoring victims interleaved with SYN_MAX cache thrashers
// across both sockets; live re-placement separates them. The pathological
// initial placement pairs each victim with a thrasher (PLACE pins worker
// k to the k-th listed core; s1:0 is core 0 of socket 1). The thrasher's
// region is held to half the L3 so it stays cache-resident next to a
// victim — the regime where its reference rate (and thus the damage it
// does) is highest.
scenario :: Scenario(NAME thrash, MIN_SOCKETS 2, MIN_CORES_PER_SOCKET 2,
                     SYN_REGION_FRACTION 0.5, DROP_THRESHOLD 0.05,
                     PLACE 0 1 s1:0 s1:1);

mon-a    :: Flow(TYPE MON, WORKERS 1);
thrash-a :: Flow(TYPE SYN_MAX, WORKERS 1);
mon-b    :: Flow(TYPE MON, WORKERS 1);
thrash-b :: Flow(TYPE SYN_MAX, WORKERS 1);
