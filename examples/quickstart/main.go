// Quickstart: build a packet-processing pipeline from a Click-style
// configuration, run it solo and under cache contention on the simulated
// 12-core platform, and measure the contention-induced performance drop —
// the paper's central quantity.
package main

import (
	"fmt"
	"log"

	"pktpredict/internal/apps"
	"pktpredict/internal/click"
	"pktpredict/internal/hw"
	"pktpredict/internal/mem"
)

func main() {
	cfg := hw.DefaultConfig()

	// A monitoring flow, composed exactly as the paper's MON workload:
	// full IP forwarding plus NetFlow. Element classes are provided by
	// the apps packages; the configuration language wires them up.
	const monConfig = `
		// One NIC receive queue feeding this core.
		src :: FromDevice(SIZE 64, SEED 42, FLOWS 100000, BUFFERS 4096);

		src -> CheckIPHeader
		    -> RadixIPLookup(ROUTES 128000, SEED 7)
		    -> DecIPTTL
		    -> NetFlow(ENTRIES 100000)
		    -> ToDevice;
	`

	build := func(domain int, seed uint64) *click.Pipeline {
		env := &click.Env{Arena: mem.NewArena(domain), Seed: seed}
		pl, err := click.ParseConfig(env, "mon", monConfig)
		if err != nil {
			log.Fatal(err)
		}
		return pl
	}

	// Solo run: the flow alone on core 0.
	solo := func() hw.FlowStats {
		platform := hw.NewPlatform(cfg)
		engine := hw.NewEngine(platform)
		engine.Attach(0, "mon", build(0, 42))
		return engine.MeasureWindow(0.004, 0.012)[0]
	}()
	fmt.Printf("solo:      %.0f packets/sec, %.1fM L3 refs/sec, %.1fM L3 hits/sec\n",
		solo.Throughput(), solo.L3RefsPerSec()/1e6, solo.L3HitsPerSec()/1e6)

	// Contended run: five aggressive co-runners (the paper's RE workload)
	// share the socket's L3 cache.
	contended := func() hw.FlowStats {
		platform := hw.NewPlatform(cfg)
		engine := hw.NewEngine(platform)
		engine.Attach(0, "mon", build(0, 42))
		params := apps.Default()
		for i := 1; i <= 5; i++ {
			arena := mem.NewArena(0) // same NUMA domain, same socket
			inst, err := params.Build(apps.RE, arena, uint64(100+i))
			if err != nil {
				log.Fatal(err)
			}
			engine.Attach(i, fmt.Sprintf("re%d", i), inst.Source)
		}
		return engine.MeasureWindow(0.004, 0.012)[0]
	}()
	fmt.Printf("contended: %.0f packets/sec, %.1fM L3 refs/sec, %.1fM L3 hits/sec\n",
		contended.Throughput(), contended.L3RefsPerSec()/1e6, contended.L3HitsPerSec()/1e6)

	drop := hw.PerformanceDrop(solo, contended)
	fmt.Printf("\ncontention-induced performance drop: %.1f%%\n", drop*100)
	fmt.Println("(the paper's Figure 2: a MON flow co-running with 5 RE flows)")
}
