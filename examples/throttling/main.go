// Throttling: containing hidden aggressiveness (paper Section 4).
//
// A flow profiles as a harmless firewall, but after a trigger — say a
// specially crafted packet from an attacker — it starts hammering memory
// like SYN_MAX, degrading its co-runners far beyond what the operator
// provisioned for. The fix the paper demonstrates: monitor each flow's
// cache references per second with hardware counters and, when a flow
// exceeds its profiled rate, slow it down through a control element at
// the head of its pipeline.
package main

import (
	"fmt"
	"log"

	"pktpredict/internal/exp"
)

func main() {
	scale := exp.Quick() // interactive scale; run with Full() for paper scale
	p := scale.NewPredictor()

	fmt.Println("running the hidden-aggressor scenario with and without containment...")
	res, err := exp.RunThrottle(scale, p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprofiled (honest) rate: %.1fM refs/sec\n", res.ProfiledRefsPerSec/1e6)
	fmt.Printf("uncontained aggressor peak: %.1fM refs/sec (%.1fx the profile)\n",
		res.PeakUncontained()/1e6, res.PeakUncontained()/res.ProfiledRefsPerSec)
	fmt.Printf("contained steady rate:      %.1fM refs/sec\n\n", res.FinalContained()/1e6)

	fmt.Printf("victim MON co-runner: %.0f pkts/sec uncontained -> %.0f contained (%.1f%% preserved)\n\n",
		res.VictimUncontainedTput, res.VictimContainedTput, res.VictimProtection()*100)

	fmt.Println("containment loop (refs/sec and control-element delay per interval):")
	for _, s := range res.Contained {
		bar := ""
		for i := 0; i < int(s.RefsPerSec/res.ProfiledRefsPerSec*20) && i < 60; i++ {
			bar += "#"
		}
		fmt.Printf("  t%02d %7.1fM %6d cyc %s\n", s.Interval, s.RefsPerSec/1e6, s.DelayCycles, bar)
	}
}
